//! Per-endpoint latency and outcome metrics for `/stats` and `/metrics`.
//!
//! Each endpoint owns an [`an5d_obs::Histogram`] plus atomic counters, so
//! recording touches the registry mutex only to look the endpoint up —
//! the hot path is wait-free atomics. Every lock recovers from poisoning
//! with [`PoisonError::into_inner`]: a panicking handler thread must not
//! take `/stats` or `/metrics` down with it (the map is only ever
//! *inserted into* under the lock, so a poisoned guard still holds a
//! structurally valid map).

use crate::json::Json;
use an5d::{BlockedRun, ExecutionBackend, Grid, KernelPlan, StencilProblem};
use an5d_obs::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Aggregated statistics for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Requests dispatched to the handler (including failed ones).
    pub count: u64,
    /// Requests answered with a non-2xx status.
    pub errors: u64,
    /// Total handler latency in microseconds.
    pub total_micros: u64,
    /// Worst handler latency in microseconds.
    pub max_micros: u64,
}

impl EndpointStats {
    /// Mean handler latency in microseconds (0 with no requests).
    #[must_use]
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }
}

/// One endpoint's recorder: exact counters plus a latency histogram.
#[derive(Debug, Default)]
struct EndpointRecorder {
    count: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
    latency: Histogram,
}

impl EndpointRecorder {
    fn record(&self, micros: u64, ok: bool) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        self.latency.record(micros);
    }

    fn stats(&self) -> EndpointStats {
        EndpointStats {
            count: self.count.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one endpoint's streaming counters.
#[derive(Debug, Clone)]
pub struct StreamSnapshot {
    /// Streamed responses that produced at least one chunk.
    pub streams: u64,
    /// Chunks produced across all streams of the endpoint.
    pub chunks: u64,
    /// Payload bytes produced (before chunked framing).
    pub bytes: u64,
    /// Time-to-first-byte: handler start to first chunk produced.
    pub ttfb: HistogramSnapshot,
}

/// One endpoint's streaming recorder: chunk/byte counters plus a
/// time-to-first-byte histogram.
#[derive(Debug, Default)]
struct StreamRecorder {
    streams: AtomicU64,
    chunks: AtomicU64,
    bytes: AtomicU64,
    ttfb: Histogram,
}

/// A point-in-time copy of the connection-layer gauges and counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnectionSnapshot {
    /// Connections accepted since startup.
    pub accepted: u64,
    /// Connections closed since startup (any reason).
    pub closed: u64,
    /// Connections that died mid-request (peer EOF or transport error
    /// while a request head or body was partially buffered).
    pub aborted: u64,
    /// Connections currently open.
    pub open: u64,
    /// Open connections idle between requests (no buffered bytes, no
    /// request in flight) — the cheap majority under C10K load.
    pub parked: u64,
}

impl ConnectionSnapshot {
    /// Open connections actively reading, executing, or writing.
    #[must_use]
    pub fn active(&self) -> u64 {
        self.open.saturating_sub(self.parked)
    }
}

/// Connection-layer gauges maintained by the reactor thread.
///
/// Only the reactor mutates these (single-threaded), but `/metrics` and
/// `/stats` render them from worker threads, so they are atomics rather
/// than plain fields.
#[derive(Debug, Default)]
pub struct ConnectionStats {
    accepted: AtomicU64,
    closed: AtomicU64,
    aborted: AtomicU64,
    open: AtomicU64,
    parked: AtomicU64,
    /// Busy time of one reactor loop iteration (poll-return to
    /// poll-entry), microseconds. A growing tail here means the reactor
    /// itself — not the workers — is the bottleneck.
    loop_busy: Histogram,
}

impl ConnectionStats {
    /// One connection accepted (opens it).
    pub fn on_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    /// One connection closed; `aborted` marks a mid-request death.
    pub fn on_closed(&self, aborted: bool) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        self.open.fetch_sub(1, Ordering::Relaxed);
        if aborted {
            self.aborted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A connection entered the parked (idle keep-alive) state.
    pub fn on_parked(&self) {
        self.parked.fetch_add(1, Ordering::Relaxed);
    }

    /// A parked connection became active again (or closed).
    pub fn on_unparked(&self) {
        self.parked.fetch_sub(1, Ordering::Relaxed);
    }

    /// Record the busy time of one reactor loop iteration.
    pub fn record_loop(&self, busy: Duration) {
        self.loop_busy.record_duration(busy);
    }

    /// Copy of the counters for rendering.
    #[must_use]
    pub fn snapshot(&self) -> ConnectionSnapshot {
        ConnectionSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            open: self.open.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the reactor-loop busy-time histogram.
    #[must_use]
    pub fn loop_snapshot(&self) -> HistogramSnapshot {
        self.loop_busy.snapshot()
    }
}

/// Thread-safe metrics registry shared by every connection worker.
///
/// Endpoints are keyed by path; the map is a `BTreeMap` so `/stats` and
/// `/metrics` render endpoints in a stable (sorted) order.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<BTreeMap<String, Arc<EndpointRecorder>>>,
    /// Streaming counters per endpoint (`?stream=1` and `/batch`).
    streams: Mutex<BTreeMap<String, Arc<StreamRecorder>>>,
    /// `backend.execute` latency per backend name, fed by
    /// [`MeteredBackend`] wrappers around every backend the service
    /// executes on.
    backends: Mutex<BTreeMap<String, Arc<EndpointRecorder>>>,
    /// Requests turned away by admission control with a 503.
    rejected: AtomicU64,
    /// Requests shed with a 503 because their deadline was already
    /// expired at dispatch admission (never reached a worker).
    deadline_shed: AtomicU64,
    /// Requests answered 504 because their deadline expired while a
    /// worker was processing them.
    deadline_expired: AtomicU64,
    /// Tune results that could not be appended to the persisted DB
    /// (the response still carried the result — durability degraded).
    tunedb_append_failures: AtomicU64,
    /// Connection-layer gauges, fed by the reactor.
    connections: ConnectionStats,
}

impl Metrics {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn recorder(&self, endpoint: &str) -> Arc<EndpointRecorder> {
        let mut endpoints = self
            .endpoints
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(endpoints.entry(endpoint.to_string()).or_default())
    }

    /// Record one handled request for an endpoint.
    pub fn record(&self, endpoint: &str, latency: Duration, ok: bool) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.recorder(endpoint).record(micros, ok);
    }

    fn stream_recorder(&self, endpoint: &str) -> Arc<StreamRecorder> {
        let mut streams = self.streams.lock().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(streams.entry(endpoint.to_string()).or_default())
    }

    /// Record a streamed response's time-to-first-byte (handler start
    /// to first chunk produced); also counts the stream itself.
    pub fn record_stream_ttfb(&self, endpoint: &str, latency: Duration) {
        let recorder = self.stream_recorder(endpoint);
        recorder.streams.fetch_add(1, Ordering::Relaxed);
        recorder.ttfb.record_duration(latency);
    }

    /// Record one produced chunk of `bytes` payload bytes on a
    /// streamed response.
    pub fn record_stream_chunk(&self, endpoint: &str, bytes: usize) {
        let recorder = self.stream_recorder(endpoint);
        recorder.chunks.fetch_add(1, Ordering::Relaxed);
        recorder
            .bytes
            .fetch_add(u64::try_from(bytes).unwrap_or(u64::MAX), Ordering::Relaxed);
    }

    /// Per-endpoint streaming snapshots, sorted by path — the data
    /// source for the `an5d_stream_*` series of `/metrics`.
    #[must_use]
    pub fn stream_snapshots(&self) -> Vec<(String, StreamSnapshot)> {
        let streams = self.streams.lock().unwrap_or_else(PoisonError::into_inner);
        streams
            .iter()
            .map(|(path, recorder)| {
                (
                    path.clone(),
                    StreamSnapshot {
                        streams: recorder.streams.load(Ordering::Relaxed),
                        chunks: recorder.chunks.load(Ordering::Relaxed),
                        bytes: recorder.bytes.load(Ordering::Relaxed),
                        ttfb: recorder.ttfb.snapshot(),
                    },
                )
            })
            .collect()
    }

    /// Record one `backend.execute` call on the named backend.
    pub fn record_backend_execute(&self, backend: &str, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let recorder = {
            let mut backends = self.backends.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(backends.entry(backend.to_string()).or_default())
        };
        recorder.record(micros, true);
    }

    /// Per-backend `(name, stats, latency histogram)` snapshots of
    /// `backend.execute`, sorted by backend name.
    #[must_use]
    pub fn backend_snapshots(&self) -> Vec<(String, EndpointStats, HistogramSnapshot)> {
        let backends = self.backends.lock().unwrap_or_else(PoisonError::into_inner);
        backends
            .iter()
            .map(|(name, recorder)| (name.clone(), recorder.stats(), recorder.latency.snapshot()))
            .collect()
    }

    /// Render the `"backends"` object of `/stats`: `backend.execute`
    /// latency per backend name.
    #[must_use]
    pub fn backends_json(&self) -> Json {
        Json::Obj(
            self.backend_snapshots()
                .into_iter()
                .map(|(name, stats, histogram)| {
                    (
                        name,
                        Json::obj(vec![
                            ("executes", Json::Int(i128::from(stats.count))),
                            ("mean_us", Json::Int(i128::from(stats.mean_micros()))),
                            ("max_us", Json::Int(i128::from(stats.max_micros))),
                            ("p50_us", Json::Int(i128::from(histogram.quantile(0.5)))),
                            ("p95_us", Json::Int(i128::from(histogram.quantile(0.95)))),
                            ("p99_us", Json::Int(i128::from(histogram.quantile(0.99)))),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// Record one connection rejected by admission control.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of admission-control rejections so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Record one request shed at admission because its deadline had
    /// already expired.
    pub fn record_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed at admission for an already-expired deadline.
    #[must_use]
    pub fn deadline_shed(&self) -> u64 {
        self.deadline_shed.load(Ordering::Relaxed)
    }

    /// Record one request answered 504 after its deadline expired
    /// mid-processing.
    pub fn record_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered 504 for a deadline that expired mid-processing.
    #[must_use]
    pub fn deadline_expired(&self) -> u64 {
        self.deadline_expired.load(Ordering::Relaxed)
    }

    /// Record one tune result that could not be persisted.
    pub fn record_tunedb_append_failure(&self) {
        self.tunedb_append_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Tune results that were served but could not be persisted.
    #[must_use]
    pub fn tunedb_append_failures(&self) -> u64 {
        self.tunedb_append_failures.load(Ordering::Relaxed)
    }

    /// The connection-layer gauges (written by the reactor).
    #[must_use]
    pub fn connections(&self) -> &ConnectionStats {
        &self.connections
    }

    /// Render the `"connections"` object of `/stats`.
    #[must_use]
    pub fn connections_json(&self) -> Json {
        let snap = self.connections.snapshot();
        Json::obj(vec![
            ("open", Json::Int(i128::from(snap.open))),
            ("parked", Json::Int(i128::from(snap.parked))),
            ("active", Json::Int(i128::from(snap.active()))),
            ("accepted", Json::Int(i128::from(snap.accepted))),
            ("closed", Json::Int(i128::from(snap.closed))),
            ("aborted", Json::Int(i128::from(snap.aborted))),
        ])
    }

    /// Snapshot of one endpoint's stats (zeroes when never hit).
    #[must_use]
    pub fn endpoint(&self, endpoint: &str) -> EndpointStats {
        self.endpoints
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(endpoint)
            .map(|recorder| recorder.stats())
            .unwrap_or_default()
    }

    /// Latency histogram snapshot of one endpoint (`None` when never hit).
    #[must_use]
    pub fn histogram(&self, endpoint: &str) -> Option<HistogramSnapshot> {
        self.endpoints
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(endpoint)
            .map(|recorder| recorder.latency.snapshot())
    }

    /// Per-endpoint `(path, stats, latency histogram)` snapshots, sorted
    /// by path — the data source for `/metrics`.
    #[must_use]
    pub fn snapshots(&self) -> Vec<(String, EndpointStats, HistogramSnapshot)> {
        let endpoints = self
            .endpoints
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        endpoints
            .iter()
            .map(|(path, recorder)| (path.clone(), recorder.stats(), recorder.latency.snapshot()))
            .collect()
    }

    /// Render the `"endpoints"` object of `/stats`.
    #[must_use]
    pub fn endpoints_json(&self) -> Json {
        Json::Obj(
            self.snapshots()
                .into_iter()
                .map(|(path, stats, histogram)| {
                    (
                        path,
                        Json::obj(vec![
                            ("count", Json::Int(i128::from(stats.count))),
                            ("errors", Json::Int(i128::from(stats.errors))),
                            ("mean_us", Json::Int(i128::from(stats.mean_micros()))),
                            ("max_us", Json::Int(i128::from(stats.max_micros))),
                            ("p50_us", Json::Int(i128::from(histogram.quantile(0.5)))),
                            ("p95_us", Json::Int(i128::from(histogram.quantile(0.95)))),
                            ("p99_us", Json::Int(i128::from(histogram.quantile(0.99)))),
                            ("p999_us", Json::Int(i128::from(histogram.quantile(0.999)))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// An [`ExecutionBackend`] decorator that records the wall-clock latency
/// of every `backend.execute` call into the shared [`Metrics`] registry,
/// keyed by the inner backend's name.
///
/// Transparent by construction: it delegates `name`/`describe` and the
/// execute methods verbatim, so wrapping never changes results — only
/// observability.
pub struct MeteredBackend {
    inner: Arc<dyn ExecutionBackend>,
    metrics: Arc<Metrics>,
}

impl MeteredBackend {
    /// Wrap `inner`, recording its execute latency into `metrics`.
    #[must_use]
    pub fn new(inner: Arc<dyn ExecutionBackend>, metrics: Arc<Metrics>) -> Self {
        Self { inner, metrics }
    }
}

impl std::fmt::Debug for MeteredBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeteredBackend")
            .field("inner", &self.inner.describe())
            .finish()
    }
}

impl ExecutionBackend for MeteredBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }

    fn execute_f32(
        &self,
        plan: &KernelPlan,
        problem: &StencilProblem,
        initial: Grid<f32>,
    ) -> BlockedRun<f32> {
        let started = Instant::now();
        let run = self.inner.execute_f32(plan, problem, initial);
        self.metrics
            .record_backend_execute(self.inner.name(), started.elapsed());
        run
    }

    fn execute_f64(
        &self,
        plan: &KernelPlan,
        problem: &StencilProblem,
        initial: Grid<f64>,
    ) -> BlockedRun<f64> {
        let started = Instant::now();
        let run = self.inner.execute_f64(plan, problem, initial);
        self.metrics
            .record_backend_execute(self.inner.name(), started.elapsed());
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_errors_and_latency() {
        let metrics = Metrics::new();
        metrics.record("/tune", Duration::from_micros(100), true);
        metrics.record("/tune", Duration::from_micros(300), false);
        metrics.record("/stats", Duration::from_micros(5), true);

        let tune = metrics.endpoint("/tune");
        assert_eq!(tune.count, 2);
        assert_eq!(tune.errors, 1);
        assert_eq!(tune.mean_micros(), 200);
        assert_eq!(tune.max_micros, 300);
        assert_eq!(metrics.endpoint("/nope"), EndpointStats::default());

        metrics.record_rejected();
        assert_eq!(metrics.rejected(), 1);

        let rendered = metrics.endpoints_json().render();
        // Sorted by path: /stats before /tune.
        let stats_at = rendered.find("/stats").unwrap();
        let tune_at = rendered.find("/tune").unwrap();
        assert!(stats_at < tune_at, "{rendered}");
    }

    #[test]
    fn endpoint_histograms_answer_percentiles() {
        let metrics = Metrics::new();
        for i in 1..=100u64 {
            metrics.record("/plan", Duration::from_micros(i * 10), true);
        }
        let histogram = metrics.histogram("/plan").expect("recorded");
        assert_eq!(histogram.count(), 100);
        assert_eq!(histogram.max(), 1_000);
        let p50 = histogram.quantile(0.5);
        let p99 = histogram.quantile(0.99);
        assert!((500..=520).contains(&p50), "p50 {p50}");
        assert!((990..=1_000).contains(&p99), "p99 {p99}");
        assert!(metrics.histogram("/nope").is_none());
        let rendered = metrics.endpoints_json().render();
        assert!(rendered.contains("\"p50_us\""), "{rendered}");
        assert!(rendered.contains("\"p999_us\""), "{rendered}");
    }

    #[test]
    fn connection_gauges_track_the_lifecycle() {
        let metrics = Metrics::new();
        let conns = metrics.connections();
        for _ in 0..3 {
            conns.on_accepted();
            conns.on_parked();
        }
        conns.on_unparked(); // one connection goes active
        let snap = conns.snapshot();
        assert_eq!(snap.accepted, 3);
        assert_eq!(snap.open, 3);
        assert_eq!(snap.parked, 2);
        assert_eq!(snap.active(), 1);

        conns.on_closed(true); // the active one dies mid-request
        conns.on_unparked();
        conns.on_closed(false);
        let snap = conns.snapshot();
        assert_eq!(snap.closed, 2);
        assert_eq!(snap.aborted, 1);
        assert_eq!(snap.open, 1);
        assert_eq!(snap.parked, 1);
        assert_eq!(snap.active(), 0);

        conns.record_loop(Duration::from_micros(120));
        assert_eq!(conns.loop_snapshot().count(), 1);

        let rendered = metrics.connections_json().render();
        assert!(rendered.contains("\"aborted\":1"), "{rendered}");
        assert!(rendered.contains("\"parked\":1"), "{rendered}");
    }

    #[test]
    fn metered_backend_is_transparent_and_records_per_backend_latency() {
        use an5d::{An5d, BlockConfig, Precision, SerialBackend};

        let metrics = Arc::new(Metrics::new());
        let backend: Arc<dyn ExecutionBackend> = Arc::new(MeteredBackend::new(
            Arc::new(SerialBackend),
            Arc::clone(&metrics),
        ));
        assert_eq!(backend.name(), "serial");
        assert_eq!(backend.describe(), "serial");

        let an5d = An5d::benchmark("j2d5pt")
            .unwrap()
            .with_backend(Arc::clone(&backend));
        let problem = an5d.problem(&[24, 24], 4).unwrap();
        let config = BlockConfig::new(2, &[12], None, Precision::Double).unwrap();
        let report = an5d.verify(&problem, &config).unwrap();
        assert!(report.matches_reference, "metering must not change results");

        let snapshots = metrics.backend_snapshots();
        assert_eq!(snapshots.len(), 1);
        assert_eq!(snapshots[0].0, "serial");
        assert_eq!(snapshots[0].1.count, 1, "one execute, one sample");
        let rendered = metrics.backends_json().render();
        assert!(rendered.contains("\"serial\""), "{rendered}");
        assert!(rendered.contains("\"executes\":1"), "{rendered}");
    }

    #[test]
    fn poisoned_registry_keeps_serving() {
        // Regression: a handler thread panicking while holding the
        // registry lock used to poison it and 500 every later /stats.
        let metrics = Arc::new(Metrics::new());
        metrics.record("/plan", Duration::from_micros(70), true);
        let poisoner = Arc::clone(&metrics);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.endpoints.lock().unwrap();
            panic!("poison the registry lock");
        })
        .join();
        assert!(metrics.endpoints.lock().is_err(), "lock must be poisoned");

        // Every read and write path still works.
        metrics.record("/plan", Duration::from_micros(30), false);
        let plan = metrics.endpoint("/plan");
        assert_eq!(plan.count, 2);
        assert_eq!(plan.errors, 1);
        assert_eq!(plan.max_micros, 70);
        assert_eq!(metrics.histogram("/plan").unwrap().count(), 2);
        let rendered = metrics.endpoints_json().render();
        assert!(rendered.contains("/plan"), "{rendered}");
    }
}
