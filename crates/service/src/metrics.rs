//! Per-endpoint latency and outcome metrics for `/stats`.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Aggregated statistics for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Requests dispatched to the handler (including failed ones).
    pub count: u64,
    /// Requests answered with a non-2xx status.
    pub errors: u64,
    /// Total handler latency in microseconds.
    pub total_micros: u64,
    /// Worst handler latency in microseconds.
    pub max_micros: u64,
}

impl EndpointStats {
    /// Mean handler latency in microseconds (0 with no requests).
    #[must_use]
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.count).unwrap_or(0)
    }
}

/// Thread-safe metrics registry shared by every connection worker.
///
/// Endpoints are keyed by path; the map is a `BTreeMap` so `/stats`
/// renders endpoints in a stable (sorted) order.
#[derive(Debug, Default)]
pub struct Metrics {
    endpoints: Mutex<BTreeMap<String, EndpointStats>>,
    /// Connections turned away by admission control with a 503.
    rejected: AtomicU64,
}

impl Metrics {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one handled request for an endpoint.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    pub fn record(&self, endpoint: &str, latency: Duration, ok: bool) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut endpoints = self.endpoints.lock().expect("metrics poisoned");
        let stats = endpoints.entry(endpoint.to_string()).or_default();
        stats.count += 1;
        if !ok {
            stats.errors += 1;
        }
        stats.total_micros = stats.total_micros.saturating_add(micros);
        stats.max_micros = stats.max_micros.max(micros);
    }

    /// Record one connection rejected by admission control.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of admission-control rejections so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Snapshot of one endpoint's stats (zeroes when never hit).
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn endpoint(&self, endpoint: &str) -> EndpointStats {
        self.endpoints
            .lock()
            .expect("metrics poisoned")
            .get(endpoint)
            .copied()
            .unwrap_or_default()
    }

    /// Render the `"endpoints"` object of `/stats`.
    ///
    /// # Panics
    ///
    /// Panics if the registry mutex was poisoned by a panicking thread.
    #[must_use]
    pub fn endpoints_json(&self) -> Json {
        let endpoints = self.endpoints.lock().expect("metrics poisoned");
        Json::Obj(
            endpoints
                .iter()
                .map(|(path, stats)| {
                    (
                        path.clone(),
                        Json::obj(vec![
                            ("count", Json::Int(i128::from(stats.count))),
                            ("errors", Json::Int(i128::from(stats.errors))),
                            ("mean_us", Json::Int(i128::from(stats.mean_micros()))),
                            ("max_us", Json::Int(i128::from(stats.max_micros))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_errors_and_latency() {
        let metrics = Metrics::new();
        metrics.record("/tune", Duration::from_micros(100), true);
        metrics.record("/tune", Duration::from_micros(300), false);
        metrics.record("/stats", Duration::from_micros(5), true);

        let tune = metrics.endpoint("/tune");
        assert_eq!(tune.count, 2);
        assert_eq!(tune.errors, 1);
        assert_eq!(tune.mean_micros(), 200);
        assert_eq!(tune.max_micros, 300);
        assert_eq!(metrics.endpoint("/nope"), EndpointStats::default());

        metrics.record_rejected();
        assert_eq!(metrics.rejected(), 1);

        let rendered = metrics.endpoints_json().render();
        // Sorted by path: /stats before /tune.
        let stats_at = rendered.find("/stats").unwrap();
        let tune_at = rendered.find("/tune").unwrap();
        assert!(stats_at < tune_at, "{rendered}");
    }
}
