//! The `an5d-serve` binary: serve the AN5D pipeline over HTTP until a
//! `POST /shutdown` arrives.
//!
//! ```text
//! an5d-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
//!            [--backend SPEC]
//!            [--keep-alive-timeout SECS] [--max-requests N]
//!            [--tune-db PATH] [--no-sync-tune-db]
//!            [--slow-threshold-ms N] [--trace-capacity N]
//!            [--faults SPEC]
//! ```
//!
//! `--workers` sizes the CPU-bound dispatch pool, not the connection
//! count: a single reactor thread owns every connection (parking idle
//! keep-alives for free), and `--queue` bounds the dispatch queue of
//! complete parsed requests — when it is full the overflowing request
//! is answered with an immediate 503.
//!
//! The execution backend for `/execute` is selected with `--backend`
//! (`serial`, `parallel[:threads]`, `vector[:threads]`); an invalid
//! `--backend` spec is a hard startup error. Without the flag the
//! standard `AN5D_BACKEND` environment variable applies, where invalid
//! specs fall back to serial with a note on stderr, exactly as in the
//! library. The persisted tuning database
//! defaults to the `AN5D_TUNE_DB` environment variable; `--tune-db`
//! overrides it (and `--tune-db ""` disables persistence). Appends are
//! fsync'd per record by default; `--no-sync-tune-db` trades that
//! durability for append latency.
//!
//! `--faults` installs a deterministic fault-injection plan (spec
//! grammar: `seed=N;point=action[@trigger][#limit];…`, e.g.
//! `seed=7;tunedb.append=error@1/20`); it defaults to the `AN5D_FAULTS`
//! environment variable and `--faults ""` disables injection. Chaos
//! testing only — never set it on a production instance.

use an5d_service::{banner, Server, ServerConfig};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: an5d-serve [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]\n\
         \x20                 [--backend SPEC]\n\
         \x20                 [--keep-alive-timeout SECS] [--max-requests N]\n\
         \x20                 [--tune-db PATH] [--no-sync-tune-db]\n\
         \x20                 [--slow-threshold-ms N] [--trace-capacity N]\n\
         \x20                 [--faults SPEC]\n\
         defaults: --addr 127.0.0.1:7845 --workers 4 --queue 64 --cache 256\n\
         \x20         --backend $AN5D_BACKEND (unset: serial); SPEC is one of\n\
         \x20         serial, parallel[:threads], vector[:threads]\n\
         \x20         --keep-alive-timeout 5 --max-requests 1000\n\
         \x20         --tune-db $AN5D_TUNE_DB (unset: no persistence)\n\
         \x20         --slow-threshold-ms 1000 --trace-capacity 256\n\
         \x20         --faults $AN5D_FAULTS (unset: no fault injection)\n\
         stop with: curl -X POST http://HOST:PORT/shutdown"
    );
    std::process::exit(2);
}

fn parse_args() -> ServerConfig {
    // The env-var default is resolved here at the binary boundary (the
    // library default is None so embedders never pick up a DB
    // implicitly); --tune-db overrides it below.
    let mut config = ServerConfig {
        tune_db: std::env::var(an5d_service::TUNE_DB_ENV)
            .ok()
            .filter(|path| !path.trim().is_empty()),
        faults: std::env::var(an5d_fault::FAULTS_ENV)
            .ok()
            .filter(|spec| !spec.trim().is_empty()),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        // Boolean flags take no value.
        if flag == "--no-sync-tune-db" {
            config.sync_tune_db = false;
            continue;
        }
        let Some(value) = args.next() else { usage() };
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => config.workers = n,
                _ => usage(),
            },
            "--queue" => match value.parse() {
                Ok(n) if n > 0 => config.queue_depth = n,
                _ => usage(),
            },
            "--cache" => match value.parse() {
                Ok(n) if n > 0 => config.cache_capacity = n,
                _ => usage(),
            },
            "--keep-alive-timeout" => match value.parse() {
                Ok(n) if n > 0 => {
                    config.keep_alive_timeout = std::time::Duration::from_secs(n);
                }
                _ => usage(),
            },
            "--max-requests" => match value.parse() {
                Ok(n) if n > 0 => config.max_requests_per_connection = n,
                _ => usage(),
            },
            "--backend" => {
                config.backend = Some(value).filter(|spec| !spec.trim().is_empty());
            }
            "--tune-db" => {
                config.tune_db = Some(value).filter(|path| !path.trim().is_empty());
            }
            "--faults" => {
                config.faults = Some(value).filter(|spec| !spec.trim().is_empty());
            }
            "--slow-threshold-ms" => match value.parse() {
                Ok(n) if n > 0 => {
                    config.slow_request_threshold = std::time::Duration::from_millis(n);
                }
                _ => usage(),
            },
            "--trace-capacity" => match value.parse() {
                Ok(n) if n > 0 => config.trace_capacity = n,
                _ => usage(),
            },
            _ => usage(),
        }
    }
    config
}

fn main() -> ExitCode {
    let config = parse_args();
    let server = match Server::start(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("an5d-serve: cannot start on {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}",
        banner(
            server.addr(),
            &server.state().backend().describe(),
            config.workers,
            config.queue_depth,
            server.state().fleet().len(),
            config.tune_db.as_deref(),
        )
    );
    server.wait();
    eprintln!("an5d-serve: shutdown complete");
    ExitCode::SUCCESS
}
