//! Minimal blocking HTTP/1.1 clients for `an5d-serve`.
//!
//! Two flavours:
//!
//! * the module-level [`get`]/[`post`]/[`raw`] helpers open **one
//!   connection per request** (they send `Connection: close`) — simple,
//!   stateless, fine for tests and one-off calls;
//! * [`KeepAliveClient`] holds a persistent connection and reuses it
//!   across requests, reconnecting transparently when the server closes
//!   it (idle timeout, per-connection request bound, shutdown). This is
//!   the high-throughput path the `load_gen` harness measures.
//!
//! Both use socket timeouts so a wedged server fails a test instead of
//! hanging it; production consumers would use any real HTTP client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Parsed response head: status, body length (when framed) and whether
/// the server announced it will close the connection.
struct ResponseHead {
    status: u16,
    content_length: Option<usize>,
    close: bool,
    /// The `x-an5d-trace` request id, when the server sent one.
    trace: Option<String>,
}

fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<ResponseHead> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut close = false;
    let mut trace = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| invalid("bad Content-Length"))?,
                );
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            } else if name.eq_ignore_ascii_case("x-an5d-trace") {
                trace = Some(value.trim().to_string());
            }
        }
    }
    Ok(ResponseHead {
        status,
        content_length,
        close,
        trace,
    })
}

/// Send raw request bytes and read one `(status, body)` response.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn raw(addr: SocketAddr, request: &str) -> io::Result<(u16, String)> {
    let (status, body, _) = raw_traced(addr, request)?;
    Ok((status, body))
}

/// Like [`raw`], also returning the `x-an5d-trace` response header
/// (the id to feed `GET /trace?id=`), when the server sent one.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn raw_traced(addr: SocketAddr, request: &str) -> io::Result<(u16, String, Option<String>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    let body = match head.content_length {
        Some(length) => {
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body)?;
            String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body"))?
        }
        None => {
            // No Content-Length: fall back to read-to-EOF framing.
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            body
        }
    };
    Ok((head.status, body, head.trace))
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String, Option<String>)> {
    raw_traced(
        addr,
        &format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// `GET path` → `(status, body)` over a fresh one-shot connection.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let (status, body, _) = request(addr, "GET", path, "")?;
    Ok((status, body))
}

/// `POST path` with a JSON body → `(status, body)` over a fresh
/// one-shot connection.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    let (status, body, _) = request(addr, "POST", path, body)?;
    Ok((status, body))
}

/// `POST path` returning `(status, body, trace id)` — the trace id is
/// the `x-an5d-trace` header value, usable with `GET /trace?id=`.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post_traced(
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> io::Result<(u16, String, Option<String>)> {
    request(addr, "POST", path, body)
}

/// A client that keeps one TCP connection to `an5d-serve` open and
/// pushes every request through it, reconnecting when the server closes
/// the connection (idle timeout, request bound, shutdown) — at most one
/// transparent retry per request, and only when no response bytes had
/// arrived (re-sending is safe then).
#[derive(Debug)]
pub struct KeepAliveClient {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Requests answered without opening a new connection.
    reused: u64,
    /// `x-an5d-trace` header of the most recent response.
    last_trace: Option<String>,
}

impl KeepAliveClient {
    /// A client for the given server address; connects lazily.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            conn: None,
            reused: 0,
            last_trace: None,
        }
    }

    /// The `x-an5d-trace` id of the most recent response, when the
    /// server sent one (feed it to `GET /trace?id=`).
    #[must_use]
    pub fn last_trace(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    /// Requests served over an already-established connection (i.e. TCP
    /// connection setups saved versus the one-shot client).
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused
    }

    fn connect(addr: SocketAddr) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        // Requests are single-segment writes; don't let Nagle hold one
        // back waiting for the previous response's ACK.
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    /// One request/response exchange over the current connection.
    fn exchange(
        conn: &mut BufReader<TcpStream>,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
    ) -> io::Result<(u16, String, bool, Option<String>)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        conn.get_mut().write_all(head.as_bytes())?;
        conn.get_mut().flush()?;
        // Same principle for the head: only closed-before-status-line
        // (UnexpectedEof from the first read) may keep its kind and thus
        // remain retryable; any failure after response bytes started
        // arriving is remapped so it cannot be silently re-sent.
        let head = read_head(conn).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                e
            } else {
                invalid(&format!("failed reading response head: {e}"))
            }
        })?;
        let length = head
            .content_length
            .ok_or_else(|| invalid("keep-alive response without Content-Length"))?;
        let mut bytes = vec![0u8; length];
        // A body truncated mid-response must NOT surface as
        // UnexpectedEof: that kind marks "no response bytes arrived" for
        // the retry logic in `request`, and a partially-received
        // response may already have been acted upon server-side.
        conn.read_exact(&mut bytes)
            .map_err(|e| invalid(&format!("truncated response body: {e}")))?;
        let body = String::from_utf8(bytes).map_err(|_| invalid("non-UTF-8 body"))?;
        Ok((head.status, body, head.close, head.trace))
    }

    /// `GET path` → `(status, body)`, reusing the connection.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO failures and malformed responses.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a JSON body → `(status, body)`, reusing the
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO failures and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let had_conn = self.conn.is_some();
        let mut conn = match self.conn.take() {
            Some(conn) => conn,
            None => Self::connect(self.addr)?,
        };
        match Self::exchange(&mut conn, self.addr, method, path, body) {
            Ok((status, response_body, close, trace)) => {
                if had_conn {
                    self.reused += 1;
                }
                if !close {
                    self.conn = Some(conn);
                }
                self.last_trace = trace;
                Ok((status, response_body))
            }
            Err(error)
                if had_conn
                    && matches!(
                        error.kind(),
                        io::ErrorKind::UnexpectedEof
                            | io::ErrorKind::BrokenPipe
                            | io::ErrorKind::ConnectionReset
                            | io::ErrorKind::ConnectionAborted
                    ) =>
            {
                // The server closed the kept-alive connection between
                // requests (idle timeout / request bound). Nothing of the
                // response had arrived (the API is idempotent anyway), so
                // retrying on a fresh connection is safe.
                let mut conn = Self::connect(self.addr)?;
                let (status, response_body, close, trace) =
                    Self::exchange(&mut conn, self.addr, method, path, body)?;
                if !close {
                    self.conn = Some(conn);
                }
                self.last_trace = trace;
                Ok((status, response_body))
            }
            Err(error) => Err(error),
        }
    }
}
