//! A minimal blocking HTTP/1.1 client for `an5d-serve`.
//!
//! One connection per request (the server is `Connection: close`), with
//! socket timeouts so a wedged server fails a test instead of hanging
//! it. Used by the integration tests, the `load_gen` harness and the
//! server's own unit tests; production consumers would use any real
//! HTTP client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Send raw request bytes and read one `(status, body)` response.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn raw(addr: SocketAddr, request: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| invalid("bad Content-Length"))?,
                );
            }
        }
    }
    let body = match content_length {
        Some(length) => {
            let mut body = vec![0u8; length];
            reader.read_exact(&mut body)?;
            String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body"))?
        }
        None => {
            // Connection: close framing — read to EOF.
            let mut body = String::new();
            reader.read_to_string(&mut body)?;
            body
        }
    };
    Ok((status, body))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    raw(
        addr,
        &format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// `GET path` → `(status, body)`.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request(addr, "GET", path, "")
}

/// `POST path` with a JSON body → `(status, body)`.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    request(addr, "POST", path, body)
}
