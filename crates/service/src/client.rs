//! Minimal blocking HTTP/1.1 clients for `an5d-serve`.
//!
//! Two flavours:
//!
//! * the module-level [`get`]/[`post`]/[`raw`] helpers open **one
//!   connection per request** (they send `Connection: close`) — simple,
//!   stateless, fine for tests and one-off calls;
//! * [`KeepAliveClient`] holds a persistent connection and reuses it
//!   across requests, reconnecting transparently when the server closes
//!   it (idle timeout, per-connection request bound, shutdown). This is
//!   the high-throughput path the `load_gen` harness measures.
//!
//! Both use socket timeouts so a wedged server fails a test instead of
//! hanging it; production consumers would use any real HTTP client.
//!
//! Framing is strict in both flavours: a response must carry
//! `Content-Length` or `Transfer-Encoding: chunked`, and a body cut
//! short mid-frame is an error — a truncated body is never silently
//! returned as success.

use crate::http::ChunkDecoder;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side socket timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Retry policy for [`KeepAliveClient`]: capped exponential backoff
/// with **seeded** jitter, so a whole fleet of clients with distinct
/// seeds decorrelates while any single run stays reproducible.
///
/// Retries are spent only on *idempotent* requests (`GET`, and `POST`
/// to the deterministic pipeline endpoints — everything but
/// `/shutdown`) and only when re-sending is provably safe: transport
/// failures before any response byte arrived, plus — when
/// [`retry_on_503`](Self::retry_on_503) is set — `503` sheds, waiting
/// out the server's `Retry-After` hint first.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum retries per call (the first attempt is free).
    pub budget: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Ceiling on the pause: caps both the exponential schedule and any
    /// server `Retry-After` hint, so a buggy or hostile server sending
    /// a huge value cannot stall the whole retry budget.
    pub cap: Duration,
    /// Jitter seed: identical seeds replay identical backoff
    /// sequences.
    pub seed: u64,
    /// Also retry `503` responses (honoring `Retry-After`). Off by
    /// default: a shed is a valid terminal answer for load tests.
    pub retry_on_503: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            budget: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0,
            retry_on_503: false,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (0-based): capped
    /// exponential backoff, jittered into `[half, full]` by the seeded
    /// stream at `token`, then floored by the server's `Retry-After`
    /// hint when one was sent — with the hint itself clamped to
    /// [`cap`](Self::cap), so the policy's ceiling is the ceiling,
    /// whatever the server claims.
    #[must_use]
    pub fn backoff(&self, attempt: u32, token: u64, retry_after_secs: Option<u64>) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .min(self.cap);
        let nanos = u64::try_from(exp.as_nanos()).unwrap_or(u64::MAX);
        let jittered = nanos / 2 + splitmix64(self.seed ^ token) % (nanos / 2 + 1);
        let mut pause = Duration::from_nanos(jittered);
        if let Some(secs) = retry_after_secs {
            let hint = Duration::from_secs(secs).min(self.cap);
            pause = pause.max(hint);
        }
        pause
    }
}

/// Is re-sending this request safe? `GET` always; `POST` to the
/// deterministic pipeline endpoints too (the same body always produces
/// the same answer) — but never `/shutdown`, whose side effect must
/// fire at most once.
fn idempotent(method: &str, path: &str) -> bool {
    method.eq_ignore_ascii_case("GET") || !path.starts_with("/shutdown")
}

/// splitmix64: the standard 64-bit finalizer — plenty for jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn invalid(message: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Parsed response head: status, body framing and whether the server
/// announced it will close the connection.
struct ResponseHead {
    status: u16,
    content_length: Option<usize>,
    /// `Transfer-Encoding: chunked` was announced; wins over any
    /// `Content-Length` per RFC 7230 §3.3.3.
    chunked: bool,
    close: bool,
    /// The `x-an5d-trace` request id, when the server sent one.
    trace: Option<String>,
    /// The `Retry-After` hint (seconds), sent with 503 sheds.
    retry_after: Option<u64>,
}

fn read_head(reader: &mut impl BufRead) -> io::Result<ResponseHead> {
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a status line",
        ));
    }
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| invalid("malformed status line"))?;

    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    let mut close = false;
    let mut trace = None;
    let mut retry_after = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("truncated response headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| invalid("bad Content-Length"))?,
                );
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                chunked = value.to_ascii_lowercase().contains("chunked");
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            } else if name.eq_ignore_ascii_case("x-an5d-trace") {
                trace = Some(value.trim().to_string());
            } else if name.eq_ignore_ascii_case("retry-after") {
                // Unparseable hints are treated as absent, not as zero —
                // the backoff schedule then decides the pause alone.
                retry_after = value.trim().parse().ok();
            }
        }
    }
    Ok(ResponseHead {
        status,
        content_length,
        chunked,
        close,
        trace,
        retry_after,
    })
}

/// Read one response body under strict framing: `Transfer-Encoding:
/// chunked` when announced (it wins over `Content-Length`), else
/// exactly `Content-Length` bytes. A response with neither is an
/// error, and so is a body cut short mid-frame — truncation is never
/// returned as success. Bytes past the body's end (the next pipelined
/// response) are left in the reader.
fn read_body(reader: &mut impl BufRead, head: &ResponseHead) -> io::Result<String> {
    let bytes = if head.chunked {
        let mut decoder = ChunkDecoder::new();
        let mut bytes = Vec::new();
        while !decoder.is_done() {
            let buf = reader.fill_buf()?;
            if buf.is_empty() {
                return Err(invalid("truncated chunked body"));
            }
            let consumed = decoder.decode(buf, &mut bytes)?;
            reader.consume(consumed);
        }
        bytes
    } else if let Some(length) = head.content_length {
        let mut bytes = vec![0u8; length];
        // A truncated body must NOT surface as UnexpectedEof: that kind
        // marks "no response bytes arrived" for the keep-alive retry
        // logic, and a partially-received response may already have been
        // acted upon server-side.
        reader
            .read_exact(&mut bytes)
            .map_err(|e| invalid(&format!("truncated response body: {e}")))?;
        bytes
    } else {
        return Err(invalid(
            "response with neither Content-Length nor chunked framing",
        ));
    };
    String::from_utf8(bytes).map_err(|_| invalid("non-UTF-8 body"))
}

/// Send raw request bytes and read one `(status, body)` response.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn raw(addr: SocketAddr, request: &str) -> io::Result<(u16, String)> {
    let (status, body, _) = raw_traced(addr, request)?;
    Ok((status, body))
}

/// Like [`raw`], also returning the `x-an5d-trace` response header
/// (the id to feed `GET /trace?id=`), when the server sent one.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn raw_traced(addr: SocketAddr, request: &str) -> io::Result<(u16, String, Option<String>)> {
    let response = raw_response(addr, request)?;
    Ok((response.status, response.body, response.trace))
}

/// A complete one-shot response: status, body, and the headers the
/// tests and harnesses assert on.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// The `x-an5d-trace` header value, when the server sent one.
    pub trace: Option<String>,
    /// The `Retry-After` header value in seconds, when the server sent
    /// one (503 sheds carry it).
    pub retry_after: Option<u64>,
}

/// Send raw request bytes and read one full [`HttpResponse`].
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn raw_response(addr: SocketAddr, request: &str) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(request.as_bytes())?;
    stream.flush()?;

    let mut reader = BufReader::new(stream);
    let head = read_head(&mut reader)?;
    let body = read_body(&mut reader, &head)?;
    Ok(HttpResponse {
        status: head.status,
        body,
        trace: head.trace,
        retry_after: head.retry_after,
    })
}

fn one_shot(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &str,
) -> io::Result<HttpResponse> {
    raw_response(
        addr,
        &format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{extra_headers}Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> io::Result<(u16, String, Option<String>)> {
    let response = one_shot(addr, method, path, body, "")?;
    Ok((response.status, response.body, response.trace))
}

/// `GET path` → `(status, body)` over a fresh one-shot connection.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let (status, body, _) = request(addr, "GET", path, "")?;
    Ok((status, body))
}

/// `POST path` with a JSON body → `(status, body)` over a fresh
/// one-shot connection.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    let (status, body, _) = request(addr, "POST", path, body)?;
    Ok((status, body))
}

/// `POST path` returning `(status, body, trace id)` — the trace id is
/// the `x-an5d-trace` header value, usable with `GET /trace?id=`.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post_traced(
    addr: SocketAddr,
    path: &str,
    body: &str,
) -> io::Result<(u16, String, Option<String>)> {
    request(addr, "POST", path, body)
}

/// `POST path` returning the full [`HttpResponse`] (including the
/// `Retry-After` shed hint) over a fresh one-shot connection.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post_response(addr: SocketAddr, path: &str, body: &str) -> io::Result<HttpResponse> {
    one_shot(addr, "POST", path, body, "")
}

/// `POST path` carrying an `x-an5d-deadline-ms` request deadline.
///
/// # Errors
///
/// Propagates connect/IO failures and malformed responses.
pub fn post_with_deadline(
    addr: SocketAddr,
    path: &str,
    body: &str,
    deadline_ms: u64,
) -> io::Result<HttpResponse> {
    one_shot(
        addr,
        "POST",
        path,
        body,
        &format!("{}: {deadline_ms}\r\n", crate::http::DEADLINE_HEADER),
    )
}

/// A client that keeps one TCP connection to `an5d-serve` open and
/// pushes every request through it, reconnecting when the server closes
/// the connection (idle timeout, request bound, shutdown).
///
/// Without a [`RetryPolicy`] the only transparent recovery is a single
/// free reconnect when the *kept-alive* connection turns out to be
/// stale (the server closed it between requests; no response bytes had
/// arrived, so re-sending is safe). [`with_retry`](Self::with_retry)
/// adds budgeted, backoff-paced retries on top for idempotent requests
/// — the client a chaos soak runs with.
#[derive(Debug)]
pub struct KeepAliveClient {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Requests answered without opening a new connection.
    reused: u64,
    /// `x-an5d-trace` header of the most recent response.
    last_trace: Option<String>,
    /// Budgeted retry policy; `None` keeps the legacy
    /// stale-reconnect-only behavior.
    retry: Option<RetryPolicy>,
    /// Monotonic token feeding the jitter stream (one per pause).
    jitter_token: u64,
    /// Total budgeted retries performed over the client's lifetime.
    retries: u64,
    /// When set, every request carries `x-an5d-deadline-ms` with this
    /// budget.
    deadline_ms: Option<u64>,
}

impl KeepAliveClient {
    /// A client for the given server address; connects lazily.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            conn: None,
            reused: 0,
            last_trace: None,
            retry: None,
            jitter_token: 0,
            retries: 0,
            deadline_ms: None,
        }
    }

    /// Attach a budgeted retry policy (see [`RetryPolicy`]).
    #[must_use]
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Set (or clear) the `x-an5d-deadline-ms` budget sent with every
    /// subsequent request.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Budgeted retries performed so far (stale-connection reconnects
    /// are not counted — nothing was re-sent unsafely there either).
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The `x-an5d-trace` id of the most recent response, when the
    /// server sent one (feed it to `GET /trace?id=`).
    #[must_use]
    pub fn last_trace(&self) -> Option<&str> {
        self.last_trace.as_deref()
    }

    /// Requests served over an already-established connection (i.e. TCP
    /// connection setups saved versus the one-shot client).
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused
    }

    fn connect(addr: SocketAddr) -> io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        // Requests are single-segment writes; don't let Nagle hold one
        // back waiting for the previous response's ACK.
        stream.set_nodelay(true)?;
        Ok(BufReader::new(stream))
    }

    /// One request/response exchange over the current connection.
    fn exchange(
        conn: &mut BufReader<TcpStream>,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &str,
        deadline_ms: Option<u64>,
    ) -> io::Result<(String, ResponseHead)> {
        let deadline_header = deadline_ms.map_or_else(String::new, |ms| {
            format!("{}: {ms}\r\n", crate::http::DEADLINE_HEADER)
        });
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{deadline_header}Connection: keep-alive\r\n\r\n{body}",
            body.len()
        );
        conn.get_mut().write_all(head.as_bytes())?;
        conn.get_mut().flush()?;
        // Same principle for the head: only closed-before-status-line
        // (UnexpectedEof from the first read) may keep its kind and thus
        // remain retryable; any failure after response bytes started
        // arriving is remapped so it cannot be silently re-sent.
        let head = read_head(conn).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                e
            } else {
                invalid(&format!("failed reading response head: {e}"))
            }
        })?;
        // Strict framing, Content-Length or chunked; every body failure
        // is remapped to InvalidData (never UnexpectedEof or a transport
        // kind), so the retry logic in `request` cannot silently re-send
        // after a response started arriving.
        let body = read_body(conn, &head).map_err(|e| {
            if e.kind() == io::ErrorKind::InvalidData {
                e
            } else {
                invalid(&format!("failed reading response body: {e}"))
            }
        })?;
        Ok((body, head))
    }

    /// `GET path` → `(status, body)`, reusing the connection.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO failures and malformed responses.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, "")
    }

    /// `POST path` with a JSON body → `(status, body)`, reusing the
    /// connection.
    ///
    /// # Errors
    ///
    /// Propagates connect/IO failures and malformed responses.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, body)
    }

    /// Spend one budgeted retry: pause per the policy (honoring
    /// `Retry-After` when given), bump the counters, and report whether
    /// a retry was available at all.
    fn spend_retry(&mut self, attempt: &mut u32, retry_after_secs: Option<u64>) -> bool {
        let Some(policy) = &self.retry else {
            return false;
        };
        if *attempt >= policy.budget {
            return false;
        }
        let pause = policy.backoff(*attempt, self.jitter_token, retry_after_secs);
        self.jitter_token += 1;
        *attempt += 1;
        self.retries += 1;
        std::thread::sleep(pause);
        true
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let may_retry = idempotent(method, path);
        // Budgeted retries spent so far on this call.
        let mut attempt: u32 = 0;
        loop {
            let had_conn = self.conn.is_some();
            let mut conn = match self.conn.take() {
                Some(conn) => conn,
                None => match Self::connect(self.addr) {
                    Ok(conn) => conn,
                    Err(error) => {
                        if may_retry && self.spend_retry(&mut attempt, None) {
                            continue;
                        }
                        return Err(error);
                    }
                },
            };
            match Self::exchange(&mut conn, self.addr, method, path, body, self.deadline_ms) {
                Ok((response_body, head)) => {
                    if had_conn {
                        self.reused += 1;
                    }
                    if !head.close {
                        self.conn = Some(conn);
                    }
                    self.last_trace = head.trace;
                    if head.status == 503
                        && may_retry
                        && self.retry.as_ref().is_some_and(|p| p.retry_on_503)
                    {
                        let retry_after = head.retry_after;
                        if self.spend_retry(&mut attempt, retry_after) {
                            continue;
                        }
                    }
                    return Ok((head.status, response_body));
                }
                Err(error)
                    if had_conn
                        && matches!(
                            error.kind(),
                            io::ErrorKind::UnexpectedEof
                                | io::ErrorKind::BrokenPipe
                                | io::ErrorKind::ConnectionReset
                                | io::ErrorKind::ConnectionAborted
                        ) =>
                {
                    // The server closed the kept-alive connection between
                    // requests (idle timeout / request bound). Nothing of
                    // the response had arrived, so re-sending on a fresh
                    // connection is safe — and free: it doesn't touch the
                    // retry budget. At most one per call: `self.conn` is
                    // now empty, so the next failure takes the budgeted
                    // path below.
                    continue;
                }
                Err(error)
                    if may_retry
                        && matches!(
                            error.kind(),
                            io::ErrorKind::UnexpectedEof
                                | io::ErrorKind::BrokenPipe
                                | io::ErrorKind::ConnectionReset
                                | io::ErrorKind::ConnectionAborted
                                | io::ErrorKind::ConnectionRefused
                                | io::ErrorKind::TimedOut
                                | io::ErrorKind::WouldBlock
                        ) =>
                {
                    // Transport failure before any response byte arrived
                    // (anything later is remapped to InvalidData by
                    // `exchange` and is *never* retried): safe to re-send
                    // an idempotent request, charged to the budget.
                    if self.spend_retry(&mut attempt, None) {
                        continue;
                    }
                    return Err(error);
                }
                Err(error) => return Err(error),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn backoff_is_deterministic_for_a_seed_and_capped() {
        let policy = RetryPolicy {
            budget: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 42,
            retry_on_503: false,
        };
        let twin = policy.clone();
        for attempt in 0..8 {
            let a = policy.backoff(attempt, u64::from(attempt), None);
            let b = twin.backoff(attempt, u64::from(attempt), None);
            assert_eq!(a, b, "same seed + token must replay the same pause");
            // Jitter stays within [half, full] of the capped exponential.
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << attempt.min(16))
                .min(Duration::from_millis(100));
            assert!(
                a >= exp / 2 && a <= exp,
                "attempt {attempt}: {a:?} vs {exp:?}"
            );
        }
        // Distinct seeds decorrelate (with overwhelming probability on
        // at least one of 8 attempts).
        let other = RetryPolicy {
            seed: 43,
            ..policy.clone()
        };
        assert!(
            (0..8)
                .any(|n| policy.backoff(n, u64::from(n), None)
                    != other.backoff(n, u64::from(n), None)),
            "different seeds must produce a different backoff sequence"
        );
    }

    #[test]
    fn retry_after_hint_floors_the_backoff_up_to_the_cap() {
        // A hint below the ceiling is honored in full…
        let roomy = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_secs(10),
            ..RetryPolicy::default()
        };
        let pause = roomy.backoff(0, 0, Some(2));
        assert!(
            (Duration::from_secs(2)..=Duration::from_secs(10)).contains(&pause),
            "hint below cap must be honored, got {pause:?}"
        );

        // …but a huge (buggy or hostile) hint is clamped to the policy's
        // ceiling instead of stalling the whole retry budget.
        let tight = RetryPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(4),
            ..RetryPolicy::default()
        };
        for hint in [2, 3600, u64::MAX] {
            let pause = tight.backoff(0, 0, Some(hint));
            assert!(
                pause <= Duration::from_millis(4),
                "hint {hint}s must be clamped to the 4ms cap, got {pause:?}"
            );
        }
        assert!(tight.backoff(0, 0, None) < Duration::from_millis(5));
    }

    /// Build a `ResponseHead` by parsing wire bytes, so framing tests
    /// exercise the real header parser.
    fn head_of(wire: &str) -> ResponseHead {
        read_head(&mut io::Cursor::new(wire.as_bytes().to_vec())).expect("head parses")
    }

    #[test]
    fn head_parses_chunked_framing_and_unparseable_retry_after() {
        let head =
            head_of("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\nRetry-After: soon\r\n\r\n");
        assert!(head.chunked);
        assert_eq!(head.content_length, None);
        assert_eq!(head.retry_after, None, "unparseable hint is absent");
        assert!(head_of("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n").content_length == Some(2));
    }

    #[test]
    fn read_body_decodes_chunked_and_leaves_the_surplus() {
        let head = head_of("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
        let wire = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\nNEXT".to_vec();
        let mut reader = io::Cursor::new(wire);
        assert_eq!(read_body(&mut reader, &head).unwrap(), "hello world");
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"NEXT", "pipelined bytes stay in the reader");
    }

    #[test]
    fn truncated_bodies_are_errors_not_success() {
        // Chunked body cut off mid-chunk.
        let chunked = head_of("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
        let err = read_body(&mut io::Cursor::new(b"5\r\nhel".to_vec()), &chunked).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        // Content-Length body shorter than announced.
        let framed = head_of("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n");
        let err = read_body(&mut io::Cursor::new(b"short".to_vec()), &framed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");

        // No framing at all: the old read-to-EOF fallback accepted any
        // truncation as success — now it is rejected outright.
        let unframed = head_of("HTTP/1.1 200 OK\r\n\r\n");
        let err = read_body(&mut io::Cursor::new(b"anything".to_vec()), &unframed).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn chunked_wins_over_content_length() {
        let head =
            head_of("HTTP/1.1 200 OK\r\nContent-Length: 999\r\nTransfer-Encoding: chunked\r\n\r\n");
        let body = read_body(
            &mut io::Cursor::new(b"2\r\nok\r\n0\r\n\r\n".to_vec()),
            &head,
        );
        assert_eq!(body.unwrap(), "ok");
    }

    #[test]
    fn only_idempotent_requests_are_retryable() {
        assert!(idempotent("GET", "/stats"));
        assert!(idempotent("POST", "/tune"));
        assert!(idempotent("POST", "/execute"));
        assert!(!idempotent("POST", "/shutdown"));
    }
}
