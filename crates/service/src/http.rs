//! Minimal HTTP/1.1 framing: request line + headers + `Content-Length`
//! body in, JSON response out — with keep-alive.
//!
//! The build environment has no crates.io access, so this is a std-only
//! implementation. Connections are **persistent by default** (HTTP/1.1
//! semantics): the server keeps reading requests off one connection
//! until the client sends `Connection: close`, the idle timeout expires,
//! or the per-connection request bound is reached. `HTTP/1.0` requests
//! default to close unless they carry `Connection: keep-alive`.
//! Responses always carry a `Content-Length` and an explicit
//! `Connection:` header, so clients never need read-to-EOF framing to
//! reuse a connection.
//!
//! Two parsers share one grammar: the blocking one-shot [`read_request`]
//! (client side, and the historical server boundary) and the resumable
//! [`RequestParser`] driven by the reactor, which consumes arbitrary
//! byte chunks and yields [`Parse::NeedMore`] until a full request is
//! buffered. Both delegate the request-line and header-field semantics
//! to the same private helpers, so they cannot drift; the equivalence is
//! additionally pinned by `tests/parser_incremental.rs`, which replays
//! every fixture at every split point through both.

use std::io::{self, BufRead, Write};

/// Upper bound on a request body (1 MiB — DSL sources are tiny).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on one header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Cap on an `x-an5d-deadline-ms` budget (24 h): large enough to be
/// "no practical limit", small enough that the arithmetic around
/// `Instant + budget` can never overflow.
pub const MAX_DEADLINE_MS: u64 = 24 * 60 * 60 * 1000;
/// The request header carrying the client's processing budget in
/// milliseconds (see [`Request::deadline`]).
pub const DEADLINE_HEADER: &str = "x-an5d-deadline-ms";

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (e.g. `/tune`).
    pub path: String,
    /// Raw query string (without the `?`; empty when none was sent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open after this
    /// request (HTTP/1.1 default unless `Connection: close`; HTTP/1.0
    /// default off unless `Connection: keep-alive`).
    pub keep_alive: bool,
    /// The request's processing budget, stamped the moment its
    /// `x-an5d-deadline-ms` header was parsed — so queueing time counts
    /// against it. `None` (no header) means no budget: never shed.
    pub deadline: Option<an5d_fault::Deadline>,
}

impl Request {
    /// A keep-alive request — the HTTP/1.1 default — for tests and
    /// direct `dispatch` callers. `path` may carry a query string
    /// (`/tune?refresh=true`), which is split off exactly as the wire
    /// parser would.
    #[must_use]
    pub fn new(method: &str, path: &str, body: &[u8]) -> Self {
        let (path, query) = split_target(path);
        Self {
            method: method.to_ascii_uppercase(),
            path,
            query,
            body: body.to_vec(),
            keep_alive: true,
            deadline: None,
        }
    }

    /// Attach a processing budget of `ms` milliseconds from now — what
    /// parsing an `x-an5d-deadline-ms: ms` header would have stamped.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(an5d_fault::Deadline::in_ms(ms.min(MAX_DEADLINE_MS)));
        self
    }

    /// `true` when the query string carries `name` as a truthy flag:
    /// bare (`?refresh`), `=true` or `=1`. Any other value — including
    /// `=false` — is off, so a typo never silently forces a re-tune.
    #[must_use]
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            key == name && matches!(value, "" | "true" | "1")
        })
    }

    /// The value of query parameter `name` (`/trace?id=abc` → `"abc"`);
    /// `None` when absent, `""` when bare or explicitly empty.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            (key == name).then_some(value)
        })
    }
}

/// Split a request target into path and query string.
fn split_target(target: &str) -> (String, String) {
    match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    }
}

/// A response about to be written; the body is JSON unless built with
/// [`Response::text`] (the Prometheus `/metrics` exposition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Trace ID echoed in the `x-an5d-trace` header, when assigned.
    pub trace: Option<String>,
    /// Seconds for a `Retry-After` header — set on every overload or
    /// deadline-shed 503 so well-behaved clients back off instead of
    /// hammering.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A response with the given status and JSON body.
    #[must_use]
    pub fn new(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
            trace: None,
            retry_after: None,
        }
    }

    /// A plain-text response (Prometheus exposition format).
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "text/plain; version=0.0.4",
            trace: None,
            retry_after: None,
        }
    }

    /// Attach the request's trace ID, echoed as `x-an5d-trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: String) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach a `Retry-After: secs` header (overload and deadline-shed
    /// 503s).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// A framing problem while reading a request, carrying the status code
/// the connection should be answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status to reply with (400, 413, …).
    pub status: u16,
    /// Human-readable reason (returned in the JSON error body).
    pub message: String,
}

impl HttpError {
    fn bad_request(message: &str) -> Self {
        Self {
            status: 400,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for HttpError {}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = io::Read::read(reader, &mut byte)?;
        if n == 0 {
            return Ok(None);
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
}

/// `true` when a `Connection:` header value contains `token` (the header
/// is a comma-separated token list, compared case-insensitively).
fn connection_header_has(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|part| part.trim().eq_ignore_ascii_case(token))
}

/// The request-line fields both parsers agree on before headers begin.
#[derive(Debug, Clone)]
struct Head {
    method: String,
    path: String,
    query: String,
}

/// Header-derived state accumulated while parsing one request head.
#[derive(Debug, Clone)]
struct HeadFields {
    keep_alive: bool,
    /// RFC 9112: once any Connection header says close, close wins — a
    /// later keep-alive token must not re-enable persistence.
    close_seen: bool,
    content_length: usize,
    /// Budget from an `x-an5d-deadline-ms` header, if one was sent.
    deadline_ms: Option<u64>,
}

/// Parse a request line into its head and the version-derived defaults.
/// Shared verbatim by [`read_request`] and [`RequestParser`].
fn parse_request_line(line: &str) -> Result<(Head, HeadFields), HttpError> {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request("unsupported HTTP version"));
    }
    // Split off the query string: the API is JSON-body based, but a few
    // endpoints take behaviour flags in the query (`/tune?refresh=true`).
    let (path, query) = split_target(target);
    Ok((
        Head {
            method: method.to_ascii_uppercase(),
            path,
            query,
        },
        HeadFields {
            // Persistent connections are the HTTP/1.1 default; 1.0 must
            // opt in.
            keep_alive: version != "HTTP/1.0",
            close_seen: false,
            content_length: 0,
            deadline_ms: None,
        },
    ))
}

/// Fold one non-empty header line into `fields`. Shared verbatim by
/// [`read_request`] and [`RequestParser`].
fn apply_header_line(line: &str, fields: &mut HeadFields) -> Result<(), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::bad_request("malformed header"));
    };
    let name = name.trim();
    if name.eq_ignore_ascii_case("content-length") {
        let Ok(length) = value.trim().parse::<usize>() else {
            return Err(HttpError::bad_request("invalid Content-Length"));
        };
        if length > MAX_BODY_BYTES {
            return Err(HttpError {
                status: 413,
                message: format!("body larger than {MAX_BODY_BYTES} bytes"),
            });
        }
        fields.content_length = length;
    } else if name.eq_ignore_ascii_case("connection") {
        if connection_header_has(value, "close") {
            fields.close_seen = true;
            fields.keep_alive = false;
        } else if connection_header_has(value, "keep-alive") && !fields.close_seen {
            fields.keep_alive = true;
        }
    } else if name.eq_ignore_ascii_case(DEADLINE_HEADER) {
        // A malformed budget is rejected, not ignored: silently running
        // without the deadline the client asked for is the one behavior
        // they can least afford.
        let Ok(ms) = value.trim().parse::<u64>() else {
            return Err(HttpError::bad_request("invalid x-an5d-deadline-ms"));
        };
        fields.deadline_ms = Some(ms.min(MAX_DEADLINE_MS));
    } else if name.eq_ignore_ascii_case("transfer-encoding") {
        // Only Content-Length framing is implemented. On a persistent
        // connection a silently-ignored chunked body would be re-parsed
        // as the next request (framing desync / request smuggling), so
        // refuse outright — the error reply closes the connection.
        return Err(HttpError {
            status: 501,
            message: "Transfer-Encoding is not supported; use Content-Length".to_string(),
        });
    }
    Ok(())
}

/// Read one request from the stream.
///
/// # Errors
///
/// `Ok(Err(HttpError))` for malformed requests that deserve an HTTP error
/// reply; `Err(io::Error)` for transport failures (closed socket, read
/// timeout) where no reply is possible or useful.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Result<Request, HttpError>> {
    let Some(request_line) = read_line(reader)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    };
    let (head, mut fields) = match parse_request_line(&request_line) {
        Ok(parsed) => parsed,
        Err(err) => return Ok(Err(err)),
    };
    for _ in 0..MAX_HEADERS {
        let Some(line) = read_line(reader)? else {
            return Ok(Err(HttpError::bad_request("truncated headers")));
        };
        if line.is_empty() {
            let mut body = vec![0u8; fields.content_length];
            io::Read::read_exact(reader, &mut body)?;
            return Ok(Ok(Request {
                method: head.method,
                path: head.path,
                query: head.query,
                body,
                keep_alive: fields.keep_alive,
                deadline: fields.deadline_ms.map(an5d_fault::Deadline::in_ms),
            }));
        }
        if let Err(err) = apply_header_line(&line, &mut fields) {
            return Ok(Err(err));
        }
    }
    Ok(Err(HttpError::bad_request("too many headers")))
}

/// The outcome of one [`RequestParser::parse`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The buffered bytes do not yet hold a complete request; feed more.
    NeedMore,
    /// One complete request was consumed from the buffer. Call
    /// [`RequestParser::parse`] again — pipelined requests may follow in
    /// the same buffer.
    Ready(Request),
    /// The stream is unframeable. Reply with the error and close: the
    /// parser stays failed because resynchronizing inside an unframeable
    /// byte stream is request smuggling by another name.
    Failed(HttpError),
}

/// Where an in-progress request head stands between `parse` calls.
#[derive(Debug)]
enum Phase {
    /// Between requests: the next line is a request line.
    RequestLine,
    /// Request line consumed; reading header lines. `seen` counts lines
    /// consumed in this phase so the blank line must arrive within
    /// `MAX_HEADERS` reads, exactly like the one-shot parser's loop.
    Headers {
        head: Head,
        fields: HeadFields,
        seen: usize,
    },
    /// Head complete; waiting for `content_length` body bytes.
    Body { head: Head, fields: HeadFields },
    /// Sticky terminal state after an unframeable stream.
    Failed(HttpError),
}

/// A resumable incremental request parser for the reactor boundary.
///
/// Feed it whatever byte chunks `read` produced ([`RequestParser::feed`])
/// and pull requests out ([`RequestParser::parse`]); the state machine
/// suspends mid-request-line, mid-headers, or mid-body and resumes on
/// the next chunk. Results are identical to running [`read_request`]
/// over the same byte stream (pinned by `tests/parser_incremental.rs`),
/// with one deliberate divergence: an over-long header line is reported
/// as a `400` [`Parse::Failed`] here, where the blocking parser's
/// `read_line` can only surface an opaque `io::Error` — the reactor can
/// still answer the client, so it should.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes below `pos` are consumed (hidden from parsing).
    pos: usize,
    /// Line-scan resume point (`pos ≤ scan ≤ buf.len()`): the bytes in
    /// `pos..scan` are known to hold no `\n`, so repeated `parse` calls
    /// over a slowly-growing line stay linear overall.
    scan: usize,
    phase: Phase,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser positioned between requests with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            scan: 0,
            phase: Phase::RequestLine,
        }
    }

    /// Append freshly-read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.scan = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the connection sits exactly between requests: no
    /// partial bytes buffered and no request head in progress. An EOF
    /// here is a clean keep-alive close; an EOF anywhere else is a
    /// mid-request truncation (counted as an aborted connection).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self.phase, Phase::RequestLine) && self.buffered() == 0
    }

    /// Take the next `\n`-terminated line off the buffer, stripping one
    /// trailing `\r`. `None` means the buffer holds no complete line
    /// yet. Mirrors the blocking `read_line`, including its length
    /// accounting (the `\r` counts against `MAX_LINE_BYTES`).
    fn take_line(&mut self) -> Option<Result<String, HttpError>> {
        match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let newline = self.scan + rel;
                if newline - self.pos > MAX_LINE_BYTES {
                    return Some(Err(HttpError::bad_request("header line too long")));
                }
                let mut end = newline;
                if end > self.pos && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = String::from_utf8_lossy(&self.buf[self.pos..end]).into_owned();
                self.pos = newline + 1;
                self.scan = self.pos;
                Some(Ok(line))
            }
            None => {
                self.scan = self.buf.len();
                if self.buffered() > MAX_LINE_BYTES {
                    return Some(Err(HttpError::bad_request("header line too long")));
                }
                None
            }
        }
    }

    fn fail(&mut self, err: HttpError) -> Parse {
        self.phase = Phase::Failed(err.clone());
        Parse::Failed(err)
    }

    /// Drive the state machine as far as the buffered bytes allow.
    pub fn parse(&mut self) -> Parse {
        loop {
            match std::mem::replace(&mut self.phase, Phase::RequestLine) {
                Phase::RequestLine => match self.take_line() {
                    None => return Parse::NeedMore,
                    Some(Err(err)) => return self.fail(err),
                    Some(Ok(line)) => match parse_request_line(&line) {
                        Ok((head, fields)) => {
                            self.phase = Phase::Headers {
                                head,
                                fields,
                                seen: 0,
                            };
                        }
                        Err(err) => return self.fail(err),
                    },
                },
                Phase::Headers {
                    head,
                    mut fields,
                    mut seen,
                } => match self.take_line() {
                    None => {
                        self.phase = Phase::Headers { head, fields, seen };
                        return Parse::NeedMore;
                    }
                    Some(Err(err)) => return self.fail(err),
                    Some(Ok(line)) => {
                        if line.is_empty() {
                            self.phase = Phase::Body { head, fields };
                            continue;
                        }
                        if let Err(err) = apply_header_line(&line, &mut fields) {
                            return self.fail(err);
                        }
                        seen += 1;
                        if seen >= MAX_HEADERS {
                            return self.fail(HttpError::bad_request("too many headers"));
                        }
                        self.phase = Phase::Headers { head, fields, seen };
                    }
                },
                Phase::Body { head, fields } => {
                    if self.buffered() < fields.content_length {
                        self.phase = Phase::Body { head, fields };
                        return Parse::NeedMore;
                    }
                    let body = self.buf[self.pos..self.pos + fields.content_length].to_vec();
                    self.pos += fields.content_length;
                    // The body may contain `\n` bytes; line scanning for
                    // the next request must restart at the new cursor.
                    self.scan = self.pos;
                    if self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                        self.scan = 0;
                    }
                    return Parse::Ready(Request {
                        method: head.method,
                        path: head.path,
                        query: head.query,
                        body,
                        keep_alive: fields.keep_alive,
                        deadline: fields.deadline_ms.map(an5d_fault::Deadline::in_ms),
                    });
                }
                Phase::Failed(err) => return self.fail(err),
            }
        }
    }
}

/// Write a JSON response and flush it, announcing whether the server
/// will keep the connection open (`keep_alive`) or close it after this
/// response.
///
/// # Errors
///
/// Propagates transport errors from the underlying stream.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    // One buffered write per response: on a kept-alive connection a
    // header segment followed by a separate body segment would trip
    // Nagle + delayed-ACK (~40 ms per request).
    let trace_header = match &response.trace {
        Some(id) => format!("x-an5d-trace: {id}\r\n"),
        None => String::new(),
    };
    let retry_header = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let rendered = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: {}\r\n\r\n{}",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        trace_header,
        retry_header,
        if keep_alive { "keep-alive" } else { "close" },
        response.body
    );
    writer.write_all(rendered.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Result<Request, HttpError>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /tune?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tune");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn query_flags_parse_truthy_spellings_only() {
        let req = |target: &str| {
            parse(&format!("POST {target} HTTP/1.1\r\n\r\n"))
                .unwrap()
                .unwrap()
        };
        assert!(req("/tune?refresh=true").query_flag("refresh"));
        assert!(req("/tune?refresh=1").query_flag("refresh"));
        assert!(req("/tune?refresh").query_flag("refresh"));
        assert!(req("/tune?a=b&refresh=true").query_flag("refresh"));
        assert!(!req("/tune?refresh=false").query_flag("refresh"));
        assert!(!req("/tune?refresh=yes").query_flag("refresh"));
        assert!(!req("/tune").query_flag("refresh"));
        assert!(!req("/tune?refreshx=true").query_flag("refresh"));
        // The constructor splits targets exactly like the wire parser.
        let direct = Request::new("POST", "/tune?refresh=true", b"{}");
        assert_eq!(direct.path, "/tune");
        assert!(direct.query_flag("refresh"));
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("get /stats HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let req = parse("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        // Token lists and mixed case are honoured.
        let req = parse("GET /stats HTTP/1.1\r\nConnection: TE, Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        // Unrelated Connection tokens leave the version default alone.
        let req = parse("GET /stats HTTP/1.1\r\nConnection: upgrade\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        // Close wins even when a later header line says keep-alive.
        let req =
            parse("GET /stats HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .unwrap();
        assert!(!req.keep_alive, "close must win once seen");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        // Stream exhausted: the next read is a transport-level EOF.
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn request_constructor_defaults_to_keep_alive() {
        let req = Request::new("post", "/tune", b"{}");
        assert_eq!(req.method, "POST");
        assert!(req.keep_alive);
    }

    #[test]
    fn transfer_encoding_is_refused_not_desynced() {
        // A chunked body the server does not parse must not be left on
        // the stream to be misread as the next pipelined request.
        let err = parse(
            "POST /plan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap_err();
        assert_eq!(err.status, 501);
        assert!(err.message.contains("Transfer-Encoding"));
    }

    #[test]
    fn malformed_requests_map_to_http_errors() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap().unwrap_err().status, 400);
        assert_eq!(
            parse("GET / SPDY/3\r\n\r\n").unwrap().unwrap_err().status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap()
                .unwrap_err()
                .status,
            400
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert_eq!(parse(&huge).unwrap().unwrap_err().status, 413);
    }

    #[test]
    fn closed_connection_is_a_transport_error() {
        assert!(parse("").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn response_framing_includes_length_and_connection_state() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::new(200, "{\"ok\":true}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::new(200, "{}".into()), false).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn trace_ids_and_content_types_are_framed() {
        let mut out = Vec::new();
        let response = Response::new(200, "{}".into()).with_trace("00c0ffee00c0ffee".into());
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("x-an5d-trace: 00c0ffee00c0ffee\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Type: application/json\r\n"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::text(200, "an5d_up 1\n".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(!text.contains("x-an5d-trace"), "{text}");
        assert!(text.ends_with("an5d_up 1\n"));
    }

    #[test]
    fn incremental_parser_suspends_and_resumes_at_any_boundary() {
        let raw = b"POST /tune?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new();
        assert!(parser.is_clean());
        // One byte at a time: every intermediate call is NeedMore.
        for &byte in &raw[..raw.len() - 1] {
            parser.feed(&[byte]);
            assert_eq!(parser.parse(), Parse::NeedMore);
            assert!(!parser.is_clean(), "mid-request is not clean");
        }
        parser.feed(&raw[raw.len() - 1..]);
        let Parse::Ready(req) = parser.parse() else {
            panic!("complete request must be ready");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tune");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert!(parser.is_clean(), "between requests is clean");
        assert_eq!(parser.parse(), Parse::NeedMore);
    }

    #[test]
    fn incremental_parser_yields_pipelined_requests_from_one_chunk() {
        let mut parser = RequestParser::new();
        parser.feed(
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /b HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let Parse::Ready(first) = parser.parse() else {
            panic!("first pipelined request");
        };
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        let Parse::Ready(second) = parser.parse() else {
            panic!("second pipelined request");
        };
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        assert!(parser.is_clean());
    }

    #[test]
    fn incremental_parser_failures_are_sticky() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / SPDY/3\r\n\r\n");
        let Parse::Failed(err) = parser.parse() else {
            panic!("unsupported version must fail");
        };
        assert_eq!(err.status, 400);
        // Even a well-formed follow-up cannot resynchronize the stream.
        parser.feed(b"GET /stats HTTP/1.1\r\n\r\n");
        assert!(matches!(parser.parse(), Parse::Failed(e) if e.status == 400));
        assert!(!parser.is_clean());
    }

    #[test]
    fn incremental_parser_enforces_line_and_body_limits() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /stats HTTP/1.1\r\nX-Pad: ");
        parser.feed(&vec![b'a'; MAX_LINE_BYTES + 1]);
        assert!(matches!(parser.parse(), Parse::Failed(e) if e.status == 400));

        let mut parser = RequestParser::new();
        parser.feed(format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30).as_bytes());
        assert!(matches!(parser.parse(), Parse::Failed(e) if e.status == 413));
    }

    #[test]
    fn truncation_is_distinguishable_from_clean_eof() {
        // Clean EOF: nothing buffered, between requests.
        let parser = RequestParser::new();
        assert!(parser.is_clean());
        // Truncation: a request line arrived but the head never finished.
        let mut parser = RequestParser::new();
        parser.feed(b"POST /tune HTTP/1.1\r\nContent-Le");
        assert_eq!(parser.parse(), Parse::NeedMore);
        assert!(!parser.is_clean());
        // Truncation mid-body counts too.
        let mut parser = RequestParser::new();
        parser.feed(b"POST /tune HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        assert_eq!(parser.parse(), Parse::NeedMore);
        assert!(!parser.is_clean());
    }

    #[test]
    fn query_params_return_values_by_key() {
        let req = Request::new("GET", "/trace?id=abc123&limit=5", b"");
        assert_eq!(req.query_param("id"), Some("abc123"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(
            Request::new("GET", "/trace?id", b"").query_param("id"),
            Some("")
        );
    }
}
