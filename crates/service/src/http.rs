//! Minimal HTTP/1.1 framing: just enough to read one JSON request and
//! write one JSON response per connection.
//!
//! The build environment has no crates.io access, so this is a std-only
//! implementation: request line + headers + `Content-Length` body in,
//! `Connection: close` response out. Connections are one-shot (no
//! keep-alive); the load generator and the CI smoke test open a fresh
//! connection per request, which also keeps the worker pool's admission
//! accounting trivial (one queue slot == one request).

use std::io::{self, BufRead, Write};

/// Upper bound on a request body (1 MiB — DSL sources are tiny).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on one header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (e.g. `/tune`).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A response about to be written; the body is always JSON here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: String,
}

impl Response {
    /// A response with the given status and JSON body.
    #[must_use]
    pub fn new(status: u16, body: String) -> Self {
        Self { status, body }
    }
}

/// A framing problem while reading a request, carrying the status code
/// the connection should be answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status to reply with (400, 413, …).
    pub status: u16,
    /// Human-readable reason (returned in the JSON error body).
    pub message: String,
}

impl HttpError {
    fn bad_request(message: &str) -> Self {
        Self {
            status: 400,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for HttpError {}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = io::Read::read(reader, &mut byte)?;
        if n == 0 {
            return Ok(None);
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
}

/// Read one request from the stream.
///
/// # Errors
///
/// `Ok(Err(HttpError))` for malformed requests that deserve an HTTP error
/// reply; `Err(io::Error)` for transport failures (closed socket, read
/// timeout) where no reply is possible or useful.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Result<Request, HttpError>> {
    let Some(request_line) = read_line(reader)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Err(HttpError::bad_request("malformed request line")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(HttpError::bad_request("unsupported HTTP version")));
    }
    // Strip any query string; the API is JSON-body based.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: usize = 0;
    for _ in 0..MAX_HEADERS {
        let Some(line) = read_line(reader)? else {
            return Ok(Err(HttpError::bad_request("truncated headers")));
        };
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            io::Read::read_exact(reader, &mut body)?;
            return Ok(Ok(Request {
                method: method.to_ascii_uppercase(),
                path,
                body,
            }));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Err(HttpError::bad_request("malformed header")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let Ok(length) = value.trim().parse::<usize>() else {
                return Ok(Err(HttpError::bad_request("invalid Content-Length")));
            };
            if length > MAX_BODY_BYTES {
                return Ok(Err(HttpError {
                    status: 413,
                    message: format!("body larger than {MAX_BODY_BYTES} bytes"),
                }));
            }
            content_length = length;
        }
    }
    Ok(Err(HttpError::bad_request("too many headers")))
}

/// Write a one-shot JSON response and flush it.
///
/// # Errors
///
/// Propagates transport errors from the underlying stream.
pub fn write_response(writer: &mut impl Write, response: &Response) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason_phrase(response.status),
        response.body.len()
    )?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Result<Request, HttpError>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /tune?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tune");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("get /stats HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_requests_map_to_http_errors() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap().unwrap_err().status, 400);
        assert_eq!(
            parse("GET / SPDY/3\r\n\r\n").unwrap().unwrap_err().status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap()
                .unwrap_err()
                .status,
            400
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert_eq!(parse(&huge).unwrap().unwrap_err().status, 413);
    }

    #[test]
    fn closed_connection_is_a_transport_error() {
        assert!(parse("").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn response_framing_includes_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::new(200, "{\"ok\":true}".into())).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
