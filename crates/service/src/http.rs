//! Minimal HTTP/1.1 framing: request line + headers + `Content-Length`
//! body in, JSON response out — with keep-alive.
//!
//! The build environment has no crates.io access, so this is a std-only
//! implementation. Connections are **persistent by default** (HTTP/1.1
//! semantics): the server keeps reading requests off one connection
//! until the client sends `Connection: close`, the idle timeout expires,
//! or the per-connection request bound is reached. `HTTP/1.0` requests
//! default to close unless they carry `Connection: keep-alive`.
//! Responses always carry either a `Content-Length` or
//! `Transfer-Encoding: chunked` plus an explicit `Connection:` header,
//! so clients never need read-to-EOF framing to reuse a connection.
//! Streamed bodies ([`ResponseBody::Stream`]) are produced chunk by
//! chunk from a pull-based [`ChunkSource`] and framed by
//! [`encode_chunk`]; the matching incremental [`ChunkDecoder`] lets
//! clients reassemble them from arbitrary byte splits.
//!
//! Two parsers share one grammar: the blocking one-shot [`read_request`]
//! (client side, and the historical server boundary) and the resumable
//! [`RequestParser`] driven by the reactor, which consumes arbitrary
//! byte chunks and yields [`Parse::NeedMore`] until a full request is
//! buffered. Both delegate the request-line and header-field semantics
//! to the same private helpers, so they cannot drift; the equivalence is
//! additionally pinned by `tests/parser_incremental.rs`, which replays
//! every fixture at every split point through both.

use std::io::{self, BufRead, Write};

/// Upper bound on a request body (1 MiB — DSL sources are tiny).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on one header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;
/// Cap on an `x-an5d-deadline-ms` budget (24 h): large enough to be
/// "no practical limit", small enough that the arithmetic around
/// `Instant + budget` can never overflow.
pub const MAX_DEADLINE_MS: u64 = 24 * 60 * 60 * 1000;
/// The request header carrying the client's processing budget in
/// milliseconds (see [`Request::deadline`]).
pub const DEADLINE_HEADER: &str = "x-an5d-deadline-ms";

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (e.g. `/tune`).
    pub path: String,
    /// Raw query string (without the `?`; empty when none was sent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open after this
    /// request (HTTP/1.1 default unless `Connection: close`; HTTP/1.0
    /// default off unless `Connection: keep-alive`).
    pub keep_alive: bool,
    /// The request's processing budget, stamped the moment its
    /// `x-an5d-deadline-ms` header was parsed — so queueing time counts
    /// against it. `None` (no header) means no budget: never shed.
    pub deadline: Option<an5d_fault::Deadline>,
}

impl Request {
    /// A keep-alive request — the HTTP/1.1 default — for tests and
    /// direct `dispatch` callers. `path` may carry a query string
    /// (`/tune?refresh=true`), which is split off exactly as the wire
    /// parser would.
    #[must_use]
    pub fn new(method: &str, path: &str, body: &[u8]) -> Self {
        let (path, query) = split_target(path);
        Self {
            method: method.to_ascii_uppercase(),
            path,
            query,
            body: body.to_vec(),
            keep_alive: true,
            deadline: None,
        }
    }

    /// Attach a processing budget of `ms` milliseconds from now — what
    /// parsing an `x-an5d-deadline-ms: ms` header would have stamped.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(an5d_fault::Deadline::in_ms(ms.min(MAX_DEADLINE_MS)));
        self
    }

    /// `true` when the query string carries `name` as a truthy flag:
    /// bare (`?refresh`), `=true` or `=1`. Any other value — including
    /// `=false` — is off, so a typo never silently forces a re-tune.
    #[must_use]
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            key == name && matches!(value, "" | "true" | "1")
        })
    }

    /// The value of query parameter `name` (`/trace?id=abc` → `"abc"`);
    /// `None` when absent, `""` when bare or explicitly empty.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            (key == name).then_some(value)
        })
    }
}

/// Split a request target into path and query string.
fn split_target(target: &str) -> (String, String) {
    match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    }
}

/// A pull-based producer of response body chunks for
/// [`ResponseBody::Stream`].
///
/// Each call returns `Ok(Some(bytes))` with the next raw payload chunk
/// (not yet chunk-framed), `Ok(None)` when the body is complete, or
/// `Err` when production failed mid-stream — in which case the
/// connection is aborted, because a half-written chunked body cannot be
/// resynchronized.
pub type ChunkSource = Box<dyn FnMut() -> io::Result<Option<Vec<u8>>> + Send>;

/// A response body: either fully materialized ([`ResponseBody::Full`],
/// framed with `Content-Length`) or produced incrementally from a
/// [`ChunkSource`] ([`ResponseBody::Stream`], framed with
/// `Transfer-Encoding: chunked`).
///
/// Derefs to [`str`]: a `Full` body exposes its text, a `Stream` body
/// derefs to `""` (the bytes do not exist yet). Equality follows the
/// same rule — two `Full` bodies compare by text, anything involving a
/// `Stream` is unequal.
pub enum ResponseBody {
    /// The whole body, rendered up front.
    Full(String),
    /// A lazily-produced body; pulled chunk by chunk at write time.
    Stream(ChunkSource),
}

impl ResponseBody {
    /// Drain this body into its full text: a `Full` body is returned
    /// as-is, a `Stream` body is pulled to exhaustion — the blocking
    /// equivalent of what the reactor write path does incrementally.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChunkSource`] failure.
    pub fn collect(&mut self) -> io::Result<String> {
        match self {
            Self::Full(body) => Ok(body.clone()),
            Self::Stream(source) => {
                let mut bytes = Vec::new();
                while let Some(chunk) = source()? {
                    bytes.extend_from_slice(&chunk);
                }
                String::from_utf8(bytes)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 stream"))
            }
        }
    }
}

impl std::fmt::Debug for ResponseBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Full(body) => f.debug_tuple("Full").field(body).finish(),
            Self::Stream(_) => f.write_str("Stream(..)"),
        }
    }
}

impl std::fmt::Display for ResponseBody {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self)
    }
}

impl PartialEq for ResponseBody {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Self::Full(a), Self::Full(b)) => a == b,
            _ => false,
        }
    }
}

impl std::ops::Deref for ResponseBody {
    type Target = str;

    fn deref(&self) -> &str {
        match self {
            Self::Full(body) => body,
            Self::Stream(_) => "",
        }
    }
}

impl From<String> for ResponseBody {
    fn from(body: String) -> Self {
        Self::Full(body)
    }
}

/// A response about to be written; the body is JSON unless built with
/// [`Response::text`] (the Prometheus `/metrics` exposition) or
/// [`Response::stream`] (whatever content type the handler declares).
#[derive(Debug, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: ResponseBody,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Trace ID echoed in the `x-an5d-trace` header, when assigned.
    pub trace: Option<String>,
    /// Seconds for a `Retry-After` header — set on every overload or
    /// deadline-shed 503 so well-behaved clients back off instead of
    /// hammering.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A response with the given status and JSON body.
    #[must_use]
    pub fn new(status: u16, body: String) -> Self {
        Self {
            status,
            body: ResponseBody::Full(body),
            content_type: "application/json",
            trace: None,
            retry_after: None,
        }
    }

    /// A plain-text response (Prometheus exposition format).
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            body: ResponseBody::Full(body),
            content_type: "text/plain; version=0.0.4",
            trace: None,
            retry_after: None,
        }
    }

    /// A streamed response: the body is pulled chunk by chunk from
    /// `source` at write time and framed with
    /// `Transfer-Encoding: chunked`.
    #[must_use]
    pub fn stream(status: u16, content_type: &'static str, source: ChunkSource) -> Self {
        Self {
            status,
            body: ResponseBody::Stream(source),
            content_type,
            trace: None,
            retry_after: None,
        }
    }

    /// Attach the request's trace ID, echoed as `x-an5d-trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: String) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attach a `Retry-After: secs` header (overload and deadline-shed
    /// 503s).
    #[must_use]
    pub fn with_retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }
}

/// A framing problem while reading a request, carrying the status code
/// the connection should be answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status to reply with (400, 413, …).
    pub status: u16,
    /// Human-readable reason (returned in the JSON error body).
    pub message: String,
}

impl HttpError {
    fn bad_request(message: &str) -> Self {
        Self {
            status: 400,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for HttpError {}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = io::Read::read(reader, &mut byte)?;
        if n == 0 {
            return Ok(None);
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
}

/// `true` when a `Connection:` header value contains `token` (the header
/// is a comma-separated token list, compared case-insensitively).
fn connection_header_has(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|part| part.trim().eq_ignore_ascii_case(token))
}

/// The request-line fields both parsers agree on before headers begin.
#[derive(Debug, Clone)]
struct Head {
    method: String,
    path: String,
    query: String,
}

/// Header-derived state accumulated while parsing one request head.
#[derive(Debug, Clone)]
struct HeadFields {
    keep_alive: bool,
    /// RFC 9112: once any Connection header says close, close wins — a
    /// later keep-alive token must not re-enable persistence.
    close_seen: bool,
    content_length: usize,
    /// Budget from an `x-an5d-deadline-ms` header, if one was sent.
    deadline_ms: Option<u64>,
}

/// Parse a request line into its head and the version-derived defaults.
/// Shared verbatim by [`read_request`] and [`RequestParser`].
fn parse_request_line(line: &str) -> Result<(Head, HeadFields), HttpError> {
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::bad_request("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad_request("unsupported HTTP version"));
    }
    // Split off the query string: the API is JSON-body based, but a few
    // endpoints take behaviour flags in the query (`/tune?refresh=true`).
    let (path, query) = split_target(target);
    Ok((
        Head {
            method: method.to_ascii_uppercase(),
            path,
            query,
        },
        HeadFields {
            // Persistent connections are the HTTP/1.1 default; 1.0 must
            // opt in.
            keep_alive: version != "HTTP/1.0",
            close_seen: false,
            content_length: 0,
            deadline_ms: None,
        },
    ))
}

/// Fold one non-empty header line into `fields`. Shared verbatim by
/// [`read_request`] and [`RequestParser`].
fn apply_header_line(line: &str, fields: &mut HeadFields) -> Result<(), HttpError> {
    let Some((name, value)) = line.split_once(':') else {
        return Err(HttpError::bad_request("malformed header"));
    };
    let name = name.trim();
    if name.eq_ignore_ascii_case("content-length") {
        let Ok(length) = value.trim().parse::<usize>() else {
            return Err(HttpError::bad_request("invalid Content-Length"));
        };
        if length > MAX_BODY_BYTES {
            return Err(HttpError {
                status: 413,
                message: format!("body larger than {MAX_BODY_BYTES} bytes"),
            });
        }
        fields.content_length = length;
    } else if name.eq_ignore_ascii_case("connection") {
        if connection_header_has(value, "close") {
            fields.close_seen = true;
            fields.keep_alive = false;
        } else if connection_header_has(value, "keep-alive") && !fields.close_seen {
            fields.keep_alive = true;
        }
    } else if name.eq_ignore_ascii_case(DEADLINE_HEADER) {
        // A malformed budget is rejected, not ignored: silently running
        // without the deadline the client asked for is the one behavior
        // they can least afford.
        let Ok(ms) = value.trim().parse::<u64>() else {
            return Err(HttpError::bad_request("invalid x-an5d-deadline-ms"));
        };
        fields.deadline_ms = Some(ms.min(MAX_DEADLINE_MS));
    } else if name.eq_ignore_ascii_case("transfer-encoding") {
        // Only Content-Length framing is implemented. On a persistent
        // connection a silently-ignored chunked body would be re-parsed
        // as the next request (framing desync / request smuggling), so
        // refuse outright — the error reply closes the connection.
        return Err(HttpError {
            status: 501,
            message: "Transfer-Encoding is not supported; use Content-Length".to_string(),
        });
    }
    Ok(())
}

/// Read one request from the stream.
///
/// # Errors
///
/// `Ok(Err(HttpError))` for malformed requests that deserve an HTTP error
/// reply; `Err(io::Error)` for transport failures (closed socket, read
/// timeout) where no reply is possible or useful.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Result<Request, HttpError>> {
    let Some(request_line) = read_line(reader)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    };
    let (head, mut fields) = match parse_request_line(&request_line) {
        Ok(parsed) => parsed,
        Err(err) => return Ok(Err(err)),
    };
    for _ in 0..MAX_HEADERS {
        let Some(line) = read_line(reader)? else {
            return Ok(Err(HttpError::bad_request("truncated headers")));
        };
        if line.is_empty() {
            let mut body = vec![0u8; fields.content_length];
            io::Read::read_exact(reader, &mut body)?;
            return Ok(Ok(Request {
                method: head.method,
                path: head.path,
                query: head.query,
                body,
                keep_alive: fields.keep_alive,
                deadline: fields.deadline_ms.map(an5d_fault::Deadline::in_ms),
            }));
        }
        if let Err(err) = apply_header_line(&line, &mut fields) {
            return Ok(Err(err));
        }
    }
    Ok(Err(HttpError::bad_request("too many headers")))
}

/// The outcome of one [`RequestParser::parse`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The buffered bytes do not yet hold a complete request; feed more.
    NeedMore,
    /// One complete request was consumed from the buffer. Call
    /// [`RequestParser::parse`] again — pipelined requests may follow in
    /// the same buffer.
    Ready(Request),
    /// The stream is unframeable. Reply with the error and close: the
    /// parser stays failed because resynchronizing inside an unframeable
    /// byte stream is request smuggling by another name.
    Failed(HttpError),
}

/// Where an in-progress request head stands between `parse` calls.
#[derive(Debug)]
enum Phase {
    /// Between requests: the next line is a request line.
    RequestLine,
    /// Request line consumed; reading header lines. `seen` counts lines
    /// consumed in this phase so the blank line must arrive within
    /// `MAX_HEADERS` reads, exactly like the one-shot parser's loop.
    Headers {
        head: Head,
        fields: HeadFields,
        seen: usize,
    },
    /// Head complete; waiting for `content_length` body bytes.
    Body { head: Head, fields: HeadFields },
    /// Sticky terminal state after an unframeable stream.
    Failed(HttpError),
}

/// A resumable incremental request parser for the reactor boundary.
///
/// Feed it whatever byte chunks `read` produced ([`RequestParser::feed`])
/// and pull requests out ([`RequestParser::parse`]); the state machine
/// suspends mid-request-line, mid-headers, or mid-body and resumes on
/// the next chunk. Results are identical to running [`read_request`]
/// over the same byte stream (pinned by `tests/parser_incremental.rs`),
/// with one deliberate divergence: an over-long header line is reported
/// as a `400` [`Parse::Failed`] here, where the blocking parser's
/// `read_line` can only surface an opaque `io::Error` — the reactor can
/// still answer the client, so it should.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes below `pos` are consumed (hidden from parsing).
    pos: usize,
    /// Line-scan resume point (`pos ≤ scan ≤ buf.len()`): the bytes in
    /// `pos..scan` are known to hold no `\n`, so repeated `parse` calls
    /// over a slowly-growing line stay linear overall.
    scan: usize,
    phase: Phase,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser positioned between requests with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            scan: 0,
            phase: Phase::RequestLine,
        }
    }

    /// Append freshly-read bytes to the parse buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            self.scan = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the connection sits exactly between requests: no
    /// partial bytes buffered and no request head in progress. An EOF
    /// here is a clean keep-alive close; an EOF anywhere else is a
    /// mid-request truncation (counted as an aborted connection).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        matches!(self.phase, Phase::RequestLine) && self.buffered() == 0
    }

    /// Take the next `\n`-terminated line off the buffer, stripping one
    /// trailing `\r`. `None` means the buffer holds no complete line
    /// yet. Mirrors the blocking `read_line`, including its length
    /// accounting (the `\r` counts against `MAX_LINE_BYTES`).
    fn take_line(&mut self) -> Option<Result<String, HttpError>> {
        match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                let newline = self.scan + rel;
                if newline - self.pos > MAX_LINE_BYTES {
                    return Some(Err(HttpError::bad_request("header line too long")));
                }
                let mut end = newline;
                if end > self.pos && self.buf[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = String::from_utf8_lossy(&self.buf[self.pos..end]).into_owned();
                self.pos = newline + 1;
                self.scan = self.pos;
                Some(Ok(line))
            }
            None => {
                self.scan = self.buf.len();
                if self.buffered() > MAX_LINE_BYTES {
                    return Some(Err(HttpError::bad_request("header line too long")));
                }
                None
            }
        }
    }

    fn fail(&mut self, err: HttpError) -> Parse {
        self.phase = Phase::Failed(err.clone());
        Parse::Failed(err)
    }

    /// Drive the state machine as far as the buffered bytes allow.
    pub fn parse(&mut self) -> Parse {
        loop {
            match std::mem::replace(&mut self.phase, Phase::RequestLine) {
                Phase::RequestLine => match self.take_line() {
                    None => return Parse::NeedMore,
                    Some(Err(err)) => return self.fail(err),
                    Some(Ok(line)) => match parse_request_line(&line) {
                        Ok((head, fields)) => {
                            self.phase = Phase::Headers {
                                head,
                                fields,
                                seen: 0,
                            };
                        }
                        Err(err) => return self.fail(err),
                    },
                },
                Phase::Headers {
                    head,
                    mut fields,
                    mut seen,
                } => match self.take_line() {
                    None => {
                        self.phase = Phase::Headers { head, fields, seen };
                        return Parse::NeedMore;
                    }
                    Some(Err(err)) => return self.fail(err),
                    Some(Ok(line)) => {
                        if line.is_empty() {
                            self.phase = Phase::Body { head, fields };
                            continue;
                        }
                        if let Err(err) = apply_header_line(&line, &mut fields) {
                            return self.fail(err);
                        }
                        seen += 1;
                        if seen >= MAX_HEADERS {
                            return self.fail(HttpError::bad_request("too many headers"));
                        }
                        self.phase = Phase::Headers { head, fields, seen };
                    }
                },
                Phase::Body { head, fields } => {
                    if self.buffered() < fields.content_length {
                        self.phase = Phase::Body { head, fields };
                        return Parse::NeedMore;
                    }
                    let body = self.buf[self.pos..self.pos + fields.content_length].to_vec();
                    self.pos += fields.content_length;
                    // The body may contain `\n` bytes; line scanning for
                    // the next request must restart at the new cursor.
                    self.scan = self.pos;
                    if self.pos == self.buf.len() {
                        self.buf.clear();
                        self.pos = 0;
                        self.scan = 0;
                    }
                    return Parse::Ready(Request {
                        method: head.method,
                        path: head.path,
                        query: head.query,
                        body,
                        keep_alive: fields.keep_alive,
                        deadline: fields.deadline_ms.map(an5d_fault::Deadline::in_ms),
                    });
                }
                Phase::Failed(err) => return self.fail(err),
            }
        }
    }
}

/// Render a response head (status line + headers + blank line) as raw
/// bytes. `body_len: Some(n)` frames the body with `Content-Length: n`;
/// `None` announces `Transfer-Encoding: chunked` — the caller then
/// writes [`encode_chunk`]-framed chunks followed by
/// [`CHUNK_TERMINATOR`].
#[must_use]
pub fn render_head_bytes(
    response: &Response,
    keep_alive: bool,
    body_len: Option<usize>,
) -> Vec<u8> {
    let trace_header = match &response.trace {
        Some(id) => format!("x-an5d-trace: {id}\r\n"),
        None => String::new(),
    };
    let retry_header = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let framing = match body_len {
        Some(len) => format!("Content-Length: {len}\r\n"),
        None => "Transfer-Encoding: chunked\r\n".to_string(),
    };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\n{}{}{}Connection: {}\r\n\r\n",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        framing,
        trace_header,
        retry_header,
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes()
}

/// Write a response and flush it, announcing whether the server will
/// keep the connection open (`keep_alive`) or close it after this
/// response. A [`ResponseBody::Full`] body is framed with
/// `Content-Length` and written as one segment; a
/// [`ResponseBody::Stream`] body is pulled to exhaustion and written as
/// chunked segments — the blocking twin of the reactor's incremental
/// write path.
///
/// # Errors
///
/// Propagates transport errors from the underlying stream and
/// [`ChunkSource`] failures (after which the stream holds an unfinished
/// chunked body — the caller must close the connection).
pub fn write_response(
    writer: &mut impl Write,
    response: &mut Response,
    keep_alive: bool,
) -> io::Result<()> {
    match &mut response.body {
        ResponseBody::Full(body) => {
            // One buffered write per response: on a kept-alive connection
            // a header segment followed by a separate body segment would
            // trip Nagle + delayed-ACK (~40 ms per request).
            let len = body.len();
            let mut rendered = render_head_bytes(response, keep_alive, Some(len));
            rendered.extend_from_slice(response.body.as_bytes());
            writer.write_all(&rendered)?;
        }
        ResponseBody::Stream(source) => {
            let head = render_head_bytes_streaming(
                response.status,
                response.content_type,
                response.trace.as_deref(),
                response.retry_after,
                keep_alive,
            );
            writer.write_all(&head)?;
            while let Some(chunk) = source()? {
                if !chunk.is_empty() {
                    writer.write_all(&encode_chunk(&chunk))?;
                }
            }
            writer.write_all(CHUNK_TERMINATOR)?;
        }
    }
    writer.flush()
}

/// [`render_head_bytes`] over exploded fields, for callers holding a
/// mutable borrow of the response body.
fn render_head_bytes_streaming(
    status: u16,
    content_type: &'static str,
    trace: Option<&str>,
    retry_after: Option<u32>,
    keep_alive: bool,
) -> Vec<u8> {
    let probe = Response {
        status,
        body: ResponseBody::Full(String::new()),
        content_type,
        trace: trace.map(str::to_string),
        retry_after,
    };
    render_head_bytes(&probe, keep_alive, None)
}

// ---------------------------------------------------------------------
// Chunked transfer coding
// ---------------------------------------------------------------------

/// The terminal zero-length chunk closing a chunked body (no trailers).
pub const CHUNK_TERMINATOR: &[u8] = b"0\r\n\r\n";

/// Upper bound on a single decoded chunk (defense against a hostile
/// size line allocating unbounded memory client-side).
const MAX_CHUNK_BYTES: usize = 1 << 30;

/// Frame one payload as a chunked-transfer chunk:
/// `{len:x}\r\n{payload}\r\n`. Empty payloads must not be framed — an
/// empty chunk is the body terminator ([`CHUNK_TERMINATOR`]).
#[must_use]
pub fn encode_chunk(payload: &[u8]) -> Vec<u8> {
    debug_assert!(!payload.is_empty(), "an empty chunk is the terminator");
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// Decoder state between [`ChunkDecoder::decode`] calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkPhase {
    /// Accumulating a chunk-size line.
    Size,
    /// `remaining` payload bytes of the current chunk still to copy.
    Data { remaining: usize },
    /// Consuming the CRLF that closes a chunk's payload.
    DataEnd,
    /// Zero-size chunk seen; consuming (and discarding) trailer lines
    /// until the blank line that ends the body.
    Trailer,
    /// The body is complete; no further input is consumed.
    Done,
}

/// An incremental decoder for `Transfer-Encoding: chunked` bodies.
///
/// Feed it arbitrary byte slices ([`ChunkDecoder::decode`]) exactly as
/// they come off the socket; it appends decoded payload bytes to the
/// caller's buffer and reports how much input it consumed, suspending
/// mid-size-line, mid-payload, or mid-trailer. Tolerates bare-`LF` line
/// endings and ignores chunk extensions (`;`-suffixed) and trailer
/// fields, per RFC 9112's lenient-receiver guidance.
#[derive(Debug)]
pub struct ChunkDecoder {
    phase: ChunkPhase,
    /// Partial size/trailer line carried across `decode` calls.
    line: Vec<u8>,
}

impl Default for ChunkDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkDecoder {
    /// A decoder positioned before the first chunk-size line.
    #[must_use]
    pub fn new() -> Self {
        Self {
            phase: ChunkPhase::Size,
            line: Vec::new(),
        }
    }

    /// `true` once the terminal chunk (and its trailer section) has
    /// been consumed — the body is complete.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.phase == ChunkPhase::Done
    }

    /// Decode as much of `input` as possible, appending payload bytes
    /// to `out`. Returns the number of input bytes consumed — always
    /// `input.len()` until the body completes, after which surplus
    /// bytes (e.g. a pipelined follow-up response) are left unread.
    ///
    /// # Errors
    ///
    /// `InvalidData` on malformed size lines, oversized chunks, or
    /// missing chunk delimiters. The decoder is then poisoned: the
    /// byte stream cannot be resynchronized.
    pub fn decode(&mut self, input: &[u8], out: &mut Vec<u8>) -> io::Result<usize> {
        let mut consumed = 0;
        while consumed < input.len() {
            match self.phase {
                ChunkPhase::Size => match self.take_line(input, &mut consumed)? {
                    None => break,
                    Some(line) => {
                        let size = parse_chunk_size(&line)?;
                        self.phase = if size == 0 {
                            ChunkPhase::Trailer
                        } else {
                            ChunkPhase::Data { remaining: size }
                        };
                    }
                },
                ChunkPhase::Data { remaining } => {
                    let take = remaining.min(input.len() - consumed);
                    out.extend_from_slice(&input[consumed..consumed + take]);
                    consumed += take;
                    self.phase = if take == remaining {
                        ChunkPhase::DataEnd
                    } else {
                        ChunkPhase::Data {
                            remaining: remaining - take,
                        }
                    };
                }
                ChunkPhase::DataEnd => match self.take_line(input, &mut consumed)? {
                    None => break,
                    Some(line) if line.is_empty() => self.phase = ChunkPhase::Size,
                    Some(_) => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "chunk payload not followed by CRLF",
                        ))
                    }
                },
                ChunkPhase::Trailer => match self.take_line(input, &mut consumed)? {
                    None => break,
                    Some(line) if line.is_empty() => self.phase = ChunkPhase::Done,
                    Some(_) => {} // trailer field: ignored
                },
                ChunkPhase::Done => break,
            }
        }
        Ok(consumed)
    }

    /// Pull the next `\n`-terminated line (one trailing `\r` stripped)
    /// out of `input[*consumed..]`, buffering partial lines across
    /// calls. `None` means the line is incomplete; `consumed` has then
    /// advanced past everything buffered.
    fn take_line(&mut self, input: &[u8], consumed: &mut usize) -> io::Result<Option<Vec<u8>>> {
        match input[*consumed..].iter().position(|&b| b == b'\n') {
            Some(rel) => {
                self.line
                    .extend_from_slice(&input[*consumed..*consumed + rel]);
                *consumed += rel + 1;
                if self.line.last() == Some(&b'\r') {
                    self.line.pop();
                }
                Ok(Some(std::mem::take(&mut self.line)))
            }
            None => {
                self.line.extend_from_slice(&input[*consumed..]);
                *consumed = input.len();
                if self.line.len() > MAX_LINE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "chunk framing line too long",
                    ));
                }
                Ok(None)
            }
        }
    }
}

/// Parse a chunk-size line: hex digits, optionally followed by a
/// `;`-prefixed extension (ignored).
fn parse_chunk_size(line: &[u8]) -> io::Result<usize> {
    let text = std::str::from_utf8(line)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-ASCII chunk size line"))?;
    let digits = text.split(';').next().unwrap_or("").trim();
    let size = usize::from_str_radix(digits, 16)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid chunk size"))?;
    if size > MAX_CHUNK_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "chunk larger than the 1 GiB cap",
        ));
    }
    Ok(size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Result<Request, HttpError>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /tune?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tune");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn query_flags_parse_truthy_spellings_only() {
        let req = |target: &str| {
            parse(&format!("POST {target} HTTP/1.1\r\n\r\n"))
                .unwrap()
                .unwrap()
        };
        assert!(req("/tune?refresh=true").query_flag("refresh"));
        assert!(req("/tune?refresh=1").query_flag("refresh"));
        assert!(req("/tune?refresh").query_flag("refresh"));
        assert!(req("/tune?a=b&refresh=true").query_flag("refresh"));
        assert!(!req("/tune?refresh=false").query_flag("refresh"));
        assert!(!req("/tune?refresh=yes").query_flag("refresh"));
        assert!(!req("/tune").query_flag("refresh"));
        assert!(!req("/tune?refreshx=true").query_flag("refresh"));
        // The constructor splits targets exactly like the wire parser.
        let direct = Request::new("POST", "/tune?refresh=true", b"{}");
        assert_eq!(direct.path, "/tune");
        assert!(direct.query_flag("refresh"));
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("get /stats HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let req = parse("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        // Token lists and mixed case are honoured.
        let req = parse("GET /stats HTTP/1.1\r\nConnection: TE, Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        // Unrelated Connection tokens leave the version default alone.
        let req = parse("GET /stats HTTP/1.1\r\nConnection: upgrade\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        // Close wins even when a later header line says keep-alive.
        let req =
            parse("GET /stats HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .unwrap();
        assert!(!req.keep_alive, "close must win once seen");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        // Stream exhausted: the next read is a transport-level EOF.
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn request_constructor_defaults_to_keep_alive() {
        let req = Request::new("post", "/tune", b"{}");
        assert_eq!(req.method, "POST");
        assert!(req.keep_alive);
    }

    #[test]
    fn transfer_encoding_is_refused_not_desynced() {
        // A chunked body the server does not parse must not be left on
        // the stream to be misread as the next pipelined request.
        let err = parse(
            "POST /plan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap_err();
        assert_eq!(err.status, 501);
        assert!(err.message.contains("Transfer-Encoding"));
    }

    #[test]
    fn malformed_requests_map_to_http_errors() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap().unwrap_err().status, 400);
        assert_eq!(
            parse("GET / SPDY/3\r\n\r\n").unwrap().unwrap_err().status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap()
                .unwrap_err()
                .status,
            400
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert_eq!(parse(&huge).unwrap().unwrap_err().status, 413);
    }

    #[test]
    fn closed_connection_is_a_transport_error() {
        assert!(parse("").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn response_framing_includes_length_and_connection_state() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            &mut Response::new(200, "{\"ok\":true}".into()),
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &mut Response::new(200, "{}".into()), false).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn trace_ids_and_content_types_are_framed() {
        let mut out = Vec::new();
        let mut response = Response::new(200, "{}".into()).with_trace("00c0ffee00c0ffee".into());
        write_response(&mut out, &mut response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("x-an5d-trace: 00c0ffee00c0ffee\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Type: application/json\r\n"));

        let mut out = Vec::new();
        write_response(
            &mut out,
            &mut Response::text(200, "an5d_up 1\n".into()),
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(!text.contains("x-an5d-trace"), "{text}");
        assert!(text.ends_with("an5d_up 1\n"));
    }

    #[test]
    fn incremental_parser_suspends_and_resumes_at_any_boundary() {
        let raw = b"POST /tune?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new();
        assert!(parser.is_clean());
        // One byte at a time: every intermediate call is NeedMore.
        for &byte in &raw[..raw.len() - 1] {
            parser.feed(&[byte]);
            assert_eq!(parser.parse(), Parse::NeedMore);
            assert!(!parser.is_clean(), "mid-request is not clean");
        }
        parser.feed(&raw[raw.len() - 1..]);
        let Parse::Ready(req) = parser.parse() else {
            panic!("complete request must be ready");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tune");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert!(parser.is_clean(), "between requests is clean");
        assert_eq!(parser.parse(), Parse::NeedMore);
    }

    #[test]
    fn incremental_parser_yields_pipelined_requests_from_one_chunk() {
        let mut parser = RequestParser::new();
        parser.feed(
            b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
              GET /b HTTP/1.1\r\nConnection: close\r\n\r\n",
        );
        let Parse::Ready(first) = parser.parse() else {
            panic!("first pipelined request");
        };
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        let Parse::Ready(second) = parser.parse() else {
            panic!("second pipelined request");
        };
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        assert!(parser.is_clean());
    }

    #[test]
    fn incremental_parser_failures_are_sticky() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / SPDY/3\r\n\r\n");
        let Parse::Failed(err) = parser.parse() else {
            panic!("unsupported version must fail");
        };
        assert_eq!(err.status, 400);
        // Even a well-formed follow-up cannot resynchronize the stream.
        parser.feed(b"GET /stats HTTP/1.1\r\n\r\n");
        assert!(matches!(parser.parse(), Parse::Failed(e) if e.status == 400));
        assert!(!parser.is_clean());
    }

    #[test]
    fn incremental_parser_enforces_line_and_body_limits() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET /stats HTTP/1.1\r\nX-Pad: ");
        parser.feed(&vec![b'a'; MAX_LINE_BYTES + 1]);
        assert!(matches!(parser.parse(), Parse::Failed(e) if e.status == 400));

        let mut parser = RequestParser::new();
        parser.feed(format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30).as_bytes());
        assert!(matches!(parser.parse(), Parse::Failed(e) if e.status == 413));
    }

    #[test]
    fn truncation_is_distinguishable_from_clean_eof() {
        // Clean EOF: nothing buffered, between requests.
        let parser = RequestParser::new();
        assert!(parser.is_clean());
        // Truncation: a request line arrived but the head never finished.
        let mut parser = RequestParser::new();
        parser.feed(b"POST /tune HTTP/1.1\r\nContent-Le");
        assert_eq!(parser.parse(), Parse::NeedMore);
        assert!(!parser.is_clean());
        // Truncation mid-body counts too.
        let mut parser = RequestParser::new();
        parser.feed(b"POST /tune HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort");
        assert_eq!(parser.parse(), Parse::NeedMore);
        assert!(!parser.is_clean());
    }

    #[test]
    fn query_params_return_values_by_key() {
        let req = Request::new("GET", "/trace?id=abc123&limit=5", b"");
        assert_eq!(req.query_param("id"), Some("abc123"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(
            Request::new("GET", "/trace?id", b"").query_param("id"),
            Some("")
        );
    }

    /// A chunk source yielding the given payloads in order.
    fn source_of(chunks: Vec<&[u8]>) -> ChunkSource {
        let mut queue: std::collections::VecDeque<Vec<u8>> =
            chunks.into_iter().map(<[u8]>::to_vec).collect();
        Box::new(move || Ok(queue.pop_front()))
    }

    #[test]
    fn chunk_encoding_frames_length_payload_and_crlf() {
        assert_eq!(encode_chunk(b"hello"), b"5\r\nhello\r\n");
        let big = vec![b'x'; 0x1a3];
        let framed = encode_chunk(&big);
        assert!(framed.starts_with(b"1a3\r\n"));
        assert!(framed.ends_with(b"\r\n"));
        assert_eq!(framed.len(), 3 + 2 + big.len() + 2);
    }

    #[test]
    fn chunk_decoder_round_trips_an_encoded_body() {
        let payloads: &[&[u8]] = &[b"hello ", b"chunked ", b"world"];
        let mut wire = Vec::new();
        for payload in payloads {
            wire.extend_from_slice(&encode_chunk(payload));
        }
        wire.extend_from_slice(CHUNK_TERMINATOR);

        let mut decoder = ChunkDecoder::new();
        let mut out = Vec::new();
        assert_eq!(decoder.decode(&wire, &mut out).unwrap(), wire.len());
        assert!(decoder.is_done());
        assert_eq!(out, b"hello chunked world");
    }

    #[test]
    fn chunk_decoder_resumes_at_any_byte_boundary() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_chunk(b"first"));
        wire.extend_from_slice(&encode_chunk(&vec![b'z'; 300]));
        wire.extend_from_slice(CHUNK_TERMINATOR);
        let mut expect = b"first".to_vec();
        expect.extend_from_slice(&vec![b'z'; 300]);

        for cut in 0..=wire.len() {
            let mut decoder = ChunkDecoder::new();
            let mut out = Vec::new();
            let consumed = decoder.decode(&wire[..cut], &mut out).unwrap();
            assert_eq!(consumed, cut, "pre-terminator input is fully consumed");
            let rest = decoder.decode(&wire[cut..], &mut out).unwrap();
            assert_eq!(rest, wire.len() - cut);
            assert!(decoder.is_done(), "cut at {cut}");
            assert_eq!(out, expect, "cut at {cut}");
        }
    }

    #[test]
    fn chunk_decoder_stops_at_the_body_end_and_leaves_surplus() {
        let mut wire = encode_chunk(b"ab");
        wire.extend_from_slice(CHUNK_TERMINATOR);
        wire.extend_from_slice(b"HTTP/1.1 200 OK\r\n"); // pipelined follow-up
        let mut decoder = ChunkDecoder::new();
        let mut out = Vec::new();
        let consumed = decoder.decode(&wire, &mut out).unwrap();
        assert_eq!(consumed, wire.len() - b"HTTP/1.1 200 OK\r\n".len());
        assert!(decoder.is_done());
        assert_eq!(out, b"ab");
        // Once done, nothing further is consumed.
        assert_eq!(decoder.decode(b"junk", &mut out).unwrap(), 0);
    }

    #[test]
    fn chunk_decoder_tolerates_extensions_trailers_and_bare_lf() {
        let wire = b"5;ext=1\r\nhello\r\n0\r\nX-Trailer: ignored\r\n\r\n";
        let mut decoder = ChunkDecoder::new();
        let mut out = Vec::new();
        assert_eq!(decoder.decode(wire, &mut out).unwrap(), wire.len());
        assert!(decoder.is_done());
        assert_eq!(out, b"hello");

        let bare_lf = b"3\nabc\n0\n\n";
        let mut decoder = ChunkDecoder::new();
        let mut out = Vec::new();
        assert_eq!(decoder.decode(bare_lf, &mut out).unwrap(), bare_lf.len());
        assert!(decoder.is_done());
        assert_eq!(out, b"abc");
    }

    #[test]
    fn chunk_decoder_rejects_malformed_framing() {
        let mut out = Vec::new();
        assert!(ChunkDecoder::new().decode(b"zz\r\n", &mut out).is_err());
        assert!(ChunkDecoder::new()
            .decode(b"40000001\r\n", &mut out)
            .is_err());
        // Payload not followed by its CRLF delimiter.
        assert!(ChunkDecoder::new()
            .decode(b"3\r\nabcX\r\n", &mut out)
            .is_err());
        // A truncated body is simply not done — truncation detection is
        // the caller's job on EOF.
        let mut decoder = ChunkDecoder::new();
        assert_eq!(decoder.decode(b"5\r\nab", &mut out).unwrap(), 5);
        assert!(!decoder.is_done());
    }

    #[test]
    fn streamed_responses_write_chunked_framing() {
        let mut response =
            Response::stream(200, "application/json", source_of(vec![b"{\"a\":", b"1}"]));
        let mut out = Vec::new();
        write_response(&mut out, &mut response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        let body_start = text.find("\r\n\r\n").unwrap() + 4;
        let mut decoder = ChunkDecoder::new();
        let mut body = Vec::new();
        decoder
            .decode(&text.as_bytes()[body_start..], &mut body)
            .unwrap();
        assert!(decoder.is_done());
        assert_eq!(body, b"{\"a\":1}");
    }

    #[test]
    fn response_body_derefs_and_collects() {
        let mut full = Response::new(200, "{\"ok\":true}".into());
        assert!(full.body.contains("ok"));
        assert_eq!(full.body.collect().unwrap(), "{\"ok\":true}");

        let mut streamed = Response::stream(200, "application/json", source_of(vec![b"a", b"b"]));
        assert_eq!(&*streamed.body, "", "stream bytes do not exist yet");
        assert_eq!(streamed.body.collect().unwrap(), "ab");
        assert_ne!(
            Response::new(200, "x".into()).body,
            Response::stream(200, "application/json", source_of(vec![])).body,
            "stream bodies never compare equal"
        );
    }
}
