//! Minimal HTTP/1.1 framing: request line + headers + `Content-Length`
//! body in, JSON response out — with keep-alive.
//!
//! The build environment has no crates.io access, so this is a std-only
//! implementation. Connections are **persistent by default** (HTTP/1.1
//! semantics): the server keeps reading requests off one connection
//! until the client sends `Connection: close`, the idle timeout expires,
//! or the per-connection request bound is reached. `HTTP/1.0` requests
//! default to close unless they carry `Connection: keep-alive`.
//! Responses always carry a `Content-Length` and an explicit
//! `Connection:` header, so clients never need read-to-EOF framing to
//! reuse a connection.

use std::io::{self, BufRead, Write};

/// Upper bound on a request body (1 MiB — DSL sources are tiny).
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Upper bound on one header line.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers.
const MAX_HEADERS: usize = 64;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without query string (e.g. `/tune`).
    pub path: String,
    /// Raw query string (without the `?`; empty when none was sent).
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open after this
    /// request (HTTP/1.1 default unless `Connection: close`; HTTP/1.0
    /// default off unless `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// A keep-alive request — the HTTP/1.1 default — for tests and
    /// direct `dispatch` callers. `path` may carry a query string
    /// (`/tune?refresh=true`), which is split off exactly as the wire
    /// parser would.
    #[must_use]
    pub fn new(method: &str, path: &str, body: &[u8]) -> Self {
        let (path, query) = split_target(path);
        Self {
            method: method.to_ascii_uppercase(),
            path,
            query,
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    /// `true` when the query string carries `name` as a truthy flag:
    /// bare (`?refresh`), `=true` or `=1`. Any other value — including
    /// `=false` — is off, so a typo never silently forces a re-tune.
    #[must_use]
    pub fn query_flag(&self, name: &str) -> bool {
        self.query.split('&').any(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            key == name && matches!(value, "" | "true" | "1")
        })
    }

    /// The value of query parameter `name` (`/trace?id=abc` → `"abc"`);
    /// `None` when absent, `""` when bare or explicitly empty.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (key, value) = match pair.split_once('=') {
                Some((key, value)) => (key, value),
                None => (pair, ""),
            };
            (key == name).then_some(value)
        })
    }
}

/// Split a request target into path and query string.
fn split_target(target: &str) -> (String, String) {
    match target.split_once('?') {
        Some((path, query)) => (path.to_string(), query.to_string()),
        None => (target.to_string(), String::new()),
    }
}

/// A response about to be written; the body is JSON unless built with
/// [`Response::text`] (the Prometheus `/metrics` exposition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: String,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Trace ID echoed in the `x-an5d-trace` header, when assigned.
    pub trace: Option<String>,
}

impl Response {
    /// A response with the given status and JSON body.
    #[must_use]
    pub fn new(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "application/json",
            trace: None,
        }
    }

    /// A plain-text response (Prometheus exposition format).
    #[must_use]
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            body,
            content_type: "text/plain; version=0.0.4",
            trace: None,
        }
    }

    /// Attach the request's trace ID, echoed as `x-an5d-trace`.
    #[must_use]
    pub fn with_trace(mut self, trace: String) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// A framing problem while reading a request, carrying the status code
/// the connection should be answered with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Status to reply with (400, 413, …).
    pub status: u16,
    /// Human-readable reason (returned in the JSON error body).
    pub message: String,
}

impl HttpError {
    fn bad_request(message: &str) -> Self {
        Self {
            status: 400,
            message: message.to_string(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.message, self.status)
    }
}

impl std::error::Error for HttpError {}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn read_line(reader: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = io::Read::read(reader, &mut byte)?;
        if n == 0 {
            return Ok(None);
        }
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(String::from_utf8_lossy(&line).into_owned()));
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
    }
}

/// `true` when a `Connection:` header value contains `token` (the header
/// is a comma-separated token list, compared case-insensitively).
fn connection_header_has(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|part| part.trim().eq_ignore_ascii_case(token))
}

/// Read one request from the stream.
///
/// # Errors
///
/// `Ok(Err(HttpError))` for malformed requests that deserve an HTTP error
/// reply; `Err(io::Error)` for transport failures (closed socket, read
/// timeout) where no reply is possible or useful.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Result<Request, HttpError>> {
    let Some(request_line) = read_line(reader)? else {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before a request line",
        ));
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Err(HttpError::bad_request("malformed request line")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(HttpError::bad_request("unsupported HTTP version")));
    }
    // Split off the query string: the API is JSON-body based, but a few
    // endpoints take behaviour flags in the query (`/tune?refresh=true`).
    let (path, query) = split_target(target);
    // Persistent connections are the HTTP/1.1 default; 1.0 must opt in.
    let mut keep_alive = version != "HTTP/1.0";
    // RFC 9112: once any Connection header says close, close wins — a
    // later keep-alive token must not re-enable persistence.
    let mut close_seen = false;

    let mut content_length: usize = 0;
    for _ in 0..MAX_HEADERS {
        let Some(line) = read_line(reader)? else {
            return Ok(Err(HttpError::bad_request("truncated headers")));
        };
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            io::Read::read_exact(reader, &mut body)?;
            return Ok(Ok(Request {
                method: method.to_ascii_uppercase(),
                path,
                query,
                body,
                keep_alive,
            }));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(Err(HttpError::bad_request("malformed header")));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let Ok(length) = value.trim().parse::<usize>() else {
                return Ok(Err(HttpError::bad_request("invalid Content-Length")));
            };
            if length > MAX_BODY_BYTES {
                return Ok(Err(HttpError {
                    status: 413,
                    message: format!("body larger than {MAX_BODY_BYTES} bytes"),
                }));
            }
            content_length = length;
        } else if name.eq_ignore_ascii_case("connection") {
            if connection_header_has(value, "close") {
                close_seen = true;
                keep_alive = false;
            } else if connection_header_has(value, "keep-alive") && !close_seen {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Only Content-Length framing is implemented. On a
            // persistent connection a silently-ignored chunked body
            // would be re-parsed as the next request (framing desync /
            // request smuggling), so refuse outright — the error reply
            // closes the connection.
            return Ok(Err(HttpError {
                status: 501,
                message: "Transfer-Encoding is not supported; use Content-Length".to_string(),
            }));
        }
    }
    Ok(Err(HttpError::bad_request("too many headers")))
}

/// Write a JSON response and flush it, announcing whether the server
/// will keep the connection open (`keep_alive`) or close it after this
/// response.
///
/// # Errors
///
/// Propagates transport errors from the underlying stream.
pub fn write_response(
    writer: &mut impl Write,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    // One buffered write per response: on a kept-alive connection a
    // header segment followed by a separate body segment would trip
    // Nagle + delayed-ACK (~40 ms per request).
    let trace_header = match &response.trace {
        Some(id) => format!("x-an5d-trace: {id}\r\n"),
        None => String::new(),
    };
    let rendered = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n{}",
        response.status,
        reason_phrase(response.status),
        response.content_type,
        response.body.len(),
        trace_header,
        if keep_alive { "keep-alive" } else { "close" },
        response.body
    );
    writer.write_all(rendered.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> io::Result<Result<Request, HttpError>> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            parse("POST /tune?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tune");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn query_flags_parse_truthy_spellings_only() {
        let req = |target: &str| {
            parse(&format!("POST {target} HTTP/1.1\r\n\r\n"))
                .unwrap()
                .unwrap()
        };
        assert!(req("/tune?refresh=true").query_flag("refresh"));
        assert!(req("/tune?refresh=1").query_flag("refresh"));
        assert!(req("/tune?refresh").query_flag("refresh"));
        assert!(req("/tune?a=b&refresh=true").query_flag("refresh"));
        assert!(!req("/tune?refresh=false").query_flag("refresh"));
        assert!(!req("/tune?refresh=yes").query_flag("refresh"));
        assert!(!req("/tune").query_flag("refresh"));
        assert!(!req("/tune?refreshx=true").query_flag("refresh"));
        // The constructor splits targets exactly like the wire parser.
        let direct = Request::new("POST", "/tune?refresh=true", b"{}");
        assert_eq!(direct.path, "/tune");
        assert!(direct.query_flag("refresh"));
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse("get /stats HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn connection_header_overrides_the_version_default() {
        let req = parse("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        // Token lists and mixed case are honoured.
        let req = parse("GET /stats HTTP/1.1\r\nConnection: TE, Close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        // Unrelated Connection tokens leave the version default alone.
        let req = parse("GET /stats HTTP/1.1\r\nConnection: upgrade\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
        // Close wins even when a later header line says keep-alive.
        let req =
            parse("GET /stats HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .unwrap();
        assert!(!req.keep_alive, "close must win once seen");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(first.path, "/a");
        assert_eq!(first.body, b"hi");
        assert!(first.keep_alive);
        let second = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(second.path, "/b");
        assert!(!second.keep_alive);
        // Stream exhausted: the next read is a transport-level EOF.
        assert!(read_request(&mut reader).is_err());
    }

    #[test]
    fn request_constructor_defaults_to_keep_alive() {
        let req = Request::new("post", "/tune", b"{}");
        assert_eq!(req.method, "POST");
        assert!(req.keep_alive);
    }

    #[test]
    fn transfer_encoding_is_refused_not_desynced() {
        // A chunked body the server does not parse must not be left on
        // the stream to be misread as the next pipelined request.
        let err = parse(
            "POST /plan HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        )
        .unwrap()
        .unwrap_err();
        assert_eq!(err.status, 501);
        assert!(err.message.contains("Transfer-Encoding"));
    }

    #[test]
    fn malformed_requests_map_to_http_errors() {
        assert_eq!(parse("nonsense\r\n\r\n").unwrap().unwrap_err().status, 400);
        assert_eq!(
            parse("GET / SPDY/3\r\n\r\n").unwrap().unwrap_err().status,
            400
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
                .unwrap()
                .unwrap_err()
                .status,
            400
        );
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 1 << 30);
        assert_eq!(parse(&huge).unwrap().unwrap_err().status, 413);
    }

    #[test]
    fn closed_connection_is_a_transport_error() {
        assert!(parse("").is_err());
        assert!(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").is_err());
    }

    #[test]
    fn response_framing_includes_length_and_connection_state() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::new(200, "{\"ok\":true}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::new(200, "{}".into()), false).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn trace_ids_and_content_types_are_framed() {
        let mut out = Vec::new();
        let response = Response::new(200, "{}".into()).with_trace("00c0ffee00c0ffee".into());
        write_response(&mut out, &response, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("x-an5d-trace: 00c0ffee00c0ffee\r\n"),
            "{text}"
        );
        assert!(text.contains("Content-Type: application/json\r\n"));

        let mut out = Vec::new();
        write_response(&mut out, &Response::text(200, "an5d_up 1\n".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(!text.contains("x-an5d-trace"), "{text}");
        assert!(text.ends_with("an5d_up 1\n"));
    }

    #[test]
    fn query_params_return_values_by_key() {
        let req = Request::new("GET", "/trace?id=abc123&limit=5", b"");
        assert_eq!(req.query_param("id"), Some("abc123"));
        assert_eq!(req.query_param("limit"), Some("5"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(
            Request::new("GET", "/trace?id", b"").query_param("id"),
            Some("")
        );
    }
}
