//! Endpoint handlers: JSON request → `An5d` facade → JSON response.
//!
//! Every handler routes through the server's [`Fleet`]: the request's
//! `"device"` (resolved through the [`an5d::DeviceRegistry`]) picks a
//! per-device shard whose plan/tuning cache coalesces concurrent
//! identical requests onto one build, and device-agnostic requests go
//! to the least-loaded shard. Latency is recorded per endpoint in the
//! shared [`Metrics`] and per device in the shard. Handlers are plain
//! functions over [`ServiceState`] — the integration tests and the
//! `load_gen` harness call [`dispatch`] directly to compute the exact
//! bytes the server must produce.

use crate::api::{self, ApiError};
use crate::fleet::{Fleet, FleetShard, RoutePolicy};
use crate::http::{ChunkSource, Request, Response, ResponseBody};
use crate::json::{self, Json};
use crate::metrics::{MeteredBackend, Metrics};
use crate::telemetry;
use an5d::{
    generate_cuda_for_plan, parse_stencil, predict, BatchJob, DeviceRegistry, ExecutionBackend,
    GridInit,
};
use an5d_obs::{ActiveTrace, Span, TraceId, TraceRing};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Completed traces retained for `GET /trace` by default.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// Default latency above which a request is logged as slow.
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_secs(1);

/// Default payload size of one streamed chunk (before chunked framing).
pub const DEFAULT_STREAM_CHUNK: usize = 16 * 1024;

/// The endpoints served, with the method each accepts.
pub const ENDPOINTS: &[(&str, &str)] = &[
    ("GET", "/devices"),
    ("GET", "/metrics"),
    ("GET", "/stats"),
    ("GET", "/trace"),
    ("POST", "/parse"),
    ("POST", "/plan"),
    ("POST", "/predict"),
    ("POST", "/tune"),
    ("POST", "/codegen"),
    ("POST", "/execute"),
    ("POST", "/batch"),
    ("POST", "/shutdown"),
];

/// Shared, thread-safe service state: one per server, referenced by every
/// connection worker.
pub struct ServiceState {
    backend: Arc<dyn ExecutionBackend>,
    fleet: Fleet,
    metrics: Arc<Metrics>,
    traces: TraceRing,
    slow_threshold: Duration,
    stream_chunk: usize,
}

impl std::fmt::Debug for ServiceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceState")
            .field("backend", &self.backend.describe())
            .field("fleet", &self.fleet)
            .finish()
    }
}

impl ServiceState {
    /// State executing on `backend`, serving the standard device fleet
    /// (V100, P100, A100, small) with a per-device plan cache of
    /// `cache_capacity`.
    #[must_use]
    pub fn new(backend: Arc<dyn ExecutionBackend>, cache_capacity: usize) -> Self {
        Self::with_registry(backend, cache_capacity, DeviceRegistry::standard())
    }

    /// State serving an explicit device fleet.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry — the service needs at least one
    /// device to route to.
    #[must_use]
    pub fn with_registry(
        backend: Arc<dyn ExecutionBackend>,
        cache_capacity: usize,
        registry: DeviceRegistry,
    ) -> Self {
        let metrics = Arc::new(Metrics::new());
        // Meter every backend.execute so /stats and /metrics can report
        // execute latency per backend name; the wrapper delegates
        // verbatim, so results are unchanged.
        let backend: Arc<dyn ExecutionBackend> =
            Arc::new(MeteredBackend::new(backend, Arc::clone(&metrics)));
        let fleet = Fleet::new(&backend, registry, cache_capacity);
        Self {
            backend,
            fleet,
            metrics,
            traces: TraceRing::new(DEFAULT_TRACE_CAPACITY),
            slow_threshold: DEFAULT_SLOW_THRESHOLD,
            stream_chunk: DEFAULT_STREAM_CHUNK,
        }
    }

    /// Run one device's shard on its own execution backend (metered like
    /// the default one); see [`Fleet::with_shard_backend`].
    ///
    /// # Panics
    ///
    /// Panics when `id` names no registered device.
    #[must_use]
    pub fn with_shard_backend(
        mut self,
        id: &an5d::DeviceId,
        backend: Arc<dyn ExecutionBackend>,
    ) -> Self {
        let metered: Arc<dyn ExecutionBackend> =
            Arc::new(MeteredBackend::new(backend, Arc::clone(&self.metrics)));
        self.fleet = self.fleet.with_shard_backend(id, metered);
        self
    }

    /// Retain at most `capacity` completed traces for `GET /trace`.
    #[must_use]
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.traces = TraceRing::new(capacity);
        self
    }

    /// Log requests slower than `threshold` (and tag them in `/trace`).
    #[must_use]
    pub fn with_slow_threshold(mut self, threshold: Duration) -> Self {
        self.slow_threshold = threshold;
        self
    }

    /// Produce streamed response bodies in chunks of `bytes` (before
    /// chunked framing). Zero is clamped to one byte.
    #[must_use]
    pub fn with_stream_chunk(mut self, bytes: usize) -> Self {
        self.stream_chunk = bytes.max(1);
        self
    }

    /// Attach a persisted tuning database: every device shard warms its
    /// plan cache and read-through state from it (see
    /// [`Fleet::with_tune_db`]), `/tune` reads through it and appends
    /// fresh results, and `/stats` reports per-device hit/miss/warm
    /// counts plus the database-wide log counters.
    #[must_use]
    pub fn with_tune_db(mut self, db: Arc<an5d::TuneDb>) -> Self {
        self.fleet = self.fleet.with_tune_db(db);
        self
    }

    /// The device fleet (registry, per-device cache shards, router).
    #[must_use]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The shared metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The execution backend blocked runs go through.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn ExecutionBackend> {
        &self.backend
    }

    /// The ring of recently completed request traces.
    #[must_use]
    pub fn traces(&self) -> &TraceRing {
        &self.traces
    }

    /// The slow-request log threshold.
    #[must_use]
    pub fn slow_threshold(&self) -> Duration {
        self.slow_threshold
    }

    /// Payload size of one streamed chunk.
    #[must_use]
    pub fn stream_chunk(&self) -> usize {
        self.stream_chunk
    }
}

fn ok(body: Json) -> Response {
    Response::new(200, body.render())
}

fn bad_request(message: &str) -> Response {
    Response::new(400, api::error_body(message))
}

/// Dispatch one parsed request to its handler, recording metrics.
///
/// `/shutdown` is *answered* here (so its body is uniform) but the
/// actual shutdown signal is the server loop's job — it watches for this
/// path before writing the response.
pub fn dispatch(state: &ServiceState, request: &Request) -> Response {
    let known = ENDPOINTS.iter().find(|(_, path)| *path == request.path);
    let Some(&(method, path)) = known else {
        return Response::new(
            404,
            api::error_body(&format!("no such endpoint {}", request.path)),
        );
    };
    if request.method != method {
        return Response::new(
            405,
            api::error_body(&format!("{path} expects {method}, got {}", request.method)),
        );
    }
    // Trace every pipeline request; the observability reads themselves
    // (`/metrics`, `/trace`) are exempt so scrapes don't churn the ring.
    let traced = !matches!(path, "/metrics" | "/trace");
    let trace = traced.then(ActiveTrace::begin);
    // Make the request's deadline ambient for this thread: the tuner
    // checkpoints read it through `an5d_fault::current_deadline()`, and
    // pool batches capture it the way they capture the trace context.
    let _deadline_guard = request.deadline.map(an5d_fault::Deadline::install);
    let started = Instant::now();
    let response = if request.deadline.is_some_and(|d| d.expired()) {
        // Expired between reactor admission and worker pickup: answer
        // without doing work the client has already given up on.
        state.metrics.record_deadline_expired();
        Response::new(
            504,
            api::deadline_error_body("deadline expired before processing began", 0, 0),
        )
    } else {
        let _span = Span::enter(path);
        handle(state, path, request)
    };
    let elapsed = started.elapsed();
    // Streamed responses are recorded when the stream finishes (see
    // `metered_stream`): the handler only set up the chunk source here,
    // so `elapsed` would undercount them.
    if matches!(response.body, ResponseBody::Full(_)) {
        state.metrics.record(path, elapsed, response.status < 300);
    }
    match trace {
        Some(trace) => {
            let id = trace.id();
            state.traces.push(trace.finish());
            if elapsed >= state.slow_threshold {
                eprintln!(
                    "[an5d-serve] slow request: {method} {path} took {}us \
                     (threshold {}us) trace={id}",
                    elapsed.as_micros(),
                    state.slow_threshold.as_micros(),
                );
            }
            response.with_trace(id.to_string())
        }
        None => response,
    }
}

fn handle(state: &ServiceState, path: &str, request: &Request) -> Response {
    match path {
        "/stats" => stats(state),
        "/metrics" => Response::text(200, telemetry::render_prometheus(state)),
        "/trace" => trace_endpoint(state, request),
        "/devices" => ok(api::devices_response(state.fleet.registry())),
        "/shutdown" => ok(Json::obj(vec![("ok", Json::Bool(true))])),
        _ => {
            let parsed = match parse_body(&request.body) {
                Ok(parsed) => parsed,
                Err(response) => return response,
            };
            // `/codegen` and `/execute` stream on request (`?stream=1`);
            // `/batch` streams NDJSON unless opted out (`?stream=0`).
            let result = match path {
                "/parse" => parse_endpoint(&parsed).map(ok),
                "/plan" => plan_endpoint(state, &parsed).map(ok),
                "/predict" => predict_endpoint(state, &parsed).map(ok),
                "/tune" => tune_endpoint(state, &parsed, request.query_flag("refresh")).map(ok),
                "/codegen" => codegen_endpoint(state, &parsed, request.query_flag("stream")),
                "/execute" => execute_endpoint(state, &parsed, request.query_flag("stream")),
                "/batch" => batch_endpoint(state, &parsed, batch_streams(request)),
                _ => unreachable!("ENDPOINTS and handle() cover the same paths"),
            };
            match result {
                Ok(response) => response,
                Err(e) => match e.deadline {
                    Some((completed, total)) => {
                        state.metrics.record_deadline_expired();
                        Response::new(504, api::deadline_error_body(&e.message, completed, total))
                    }
                    None => bad_request(&e.message),
                },
            }
        }
    }
}

fn parse_body(body: &[u8]) -> Result<Json, Response> {
    let text =
        std::str::from_utf8(body).map_err(|_| bad_request("request body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(bad_request("request body must be a JSON object"));
    }
    json::parse(text).map_err(|e| bad_request(&e.to_string()))
}

/// `GET /trace` lists the retained traces; `GET /trace?id=<hex>` (the
/// value echoed in the `x-an5d-trace` response header) returns that
/// trace's full span tree.
fn trace_endpoint(state: &ServiceState, request: &Request) -> Response {
    match request.query_param("id") {
        None => ok(telemetry::traces_summary(state)),
        Some(raw) => {
            let Some(id) = TraceId::parse(raw) else {
                return bad_request(&format!("malformed trace id {raw:?}"));
            };
            match state.traces.get(id) {
                Some(trace) => ok(telemetry::trace_detail(&trace)),
                None => Response::new(
                    404,
                    api::error_body(&format!("no retained trace with id {id}")),
                ),
            }
        }
    }
}

fn stats(state: &ServiceState) -> Response {
    ok(Json::obj(vec![
        ("backend", Json::Str(state.backend.describe())),
        // Fleet-wide totals, kept at the top level for compatibility
        // with pre-fleet consumers; per-device breakdowns live under
        // "devices".
        (
            "cache",
            api::cache_stats_json(&state.fleet.aggregate_cache_stats()),
        ),
        ("devices", state.fleet.stats_json()),
        // backend.execute latency per backend name (fed by the metered
        // backend wrappers around every shard's backend).
        ("backends", state.metrics.backends_json()),
        ("tunedb", state.fleet.tunedb_json()),
        ("pool", api::pool_stats_json(&an5d::global_pool().stats())),
        ("endpoints", state.metrics.endpoints_json()),
        ("connections", state.metrics.connections_json()),
        ("rejected", Json::Int(i128::from(state.metrics.rejected()))),
    ]))
}

fn parse_endpoint(body: &Json) -> Result<Json, ApiError> {
    let source = body
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new("missing required field \"source\""))?;
    let name = body
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::new("missing required field \"name\""))?;
    let detected = parse_stencil(source, name).map_err(|e| ApiError::new(e.to_string()))?;
    Ok(api::parse_response(&detected))
}

/// Resolve the request's device (if any) and dispatch to a fleet shard.
///
/// `policy` decides where device-agnostic requests go: endpoints whose
/// bytes do not depend on the device balance to the least-loaded shard;
/// `/predict` and `/tune` default to the registry's default device so
/// their responses stay deterministic.
fn routed<'a>(
    state: &'a ServiceState,
    body: &Json,
    policy: RoutePolicy,
) -> Result<&'a FleetShard, ApiError> {
    let requested = api::device_from(body, state.fleet.registry())?;
    state.fleet.route(requested.as_ref(), policy)
}

/// The shared front half of `/plan`, `/predict` and `/codegen`: extract
/// stencil + problem + config + scheme and plan through the shard's
/// cache.
fn planned(
    shard: &FleetShard,
    body: &Json,
) -> Result<(an5d::StencilProblem, Arc<an5d::KernelPlan>), ApiError> {
    let pipeline = api::pipeline_from(body)?;
    let problem = api::problem_from(body, &pipeline)?;
    let config = api::config_from(body)?;
    let scheme = api::scheme_from(body)?;
    let plan = shard
        .cache()
        .get_or_build(pipeline.def(), &problem, &config, scheme)
        .map_err(|e| ApiError::new(e.to_string()))?;
    Ok((problem, plan))
}

fn plan_endpoint(state: &ServiceState, body: &Json) -> Result<Json, ApiError> {
    let shard = routed(state, body, RoutePolicy::LeastLoaded)?;
    shard.observe(|| {
        let (_, plan) = planned(shard, body)?;
        Ok(api::plan_response(&plan))
    })
}

fn predict_endpoint(state: &ServiceState, body: &Json) -> Result<Json, ApiError> {
    let shard = routed(state, body, RoutePolicy::DefaultDevice)?;
    shard.observe(|| {
        let (problem, plan) = planned(shard, body)?;
        Ok(api::predict_response(&predict(
            &plan,
            &problem,
            shard.device(),
        )))
    })
}

/// Preserve deadline-expiry structure when a tuner error crosses into
/// the API layer, so the dispatcher can answer `504` with progress.
fn tune_error(e: an5d::An5dError) -> ApiError {
    match e.deadline_progress() {
        Some((completed, total)) => ApiError::deadline_exceeded(e.to_string(), completed, total),
        None => ApiError::new(e.to_string()),
    }
}

/// `/tune`: read-through the persisted tuning DB when one is attached —
/// a stored result for the exact key is answered without invoking the
/// tuner (and byte-identically, since tuning is deterministic and the
/// record codec round-trips every `f64`); a miss tunes and appends.
/// `?refresh=true` bypasses the stored record and overwrites it.
fn tune_endpoint(state: &ServiceState, body: &Json, refresh: bool) -> Result<Json, ApiError> {
    let shard = routed(state, body, RoutePolicy::DefaultDevice)?;
    shard.observe(|| {
        let pipeline = api::pipeline_from(body)?;
        let problem = api::problem_from(body, &pipeline)?;
        let precision = api::precision_from(body)?;
        let space = api::space_from(body, pipeline.def().ndim(), precision)?;
        let result = match state.fleet.tune_db() {
            Some(db) => {
                let outcome = pipeline
                    .tune_with_db(
                        &problem,
                        shard.id(),
                        shard.device(),
                        &space,
                        Arc::clone(shard.cache()),
                        db,
                        refresh,
                    )
                    .map_err(tune_error)?;
                shard.record_tune(outcome.from_db, refresh);
                if let Some(err) = &outcome.persist_error {
                    // Durability degraded, not correctness: the answer is
                    // still served; the failure is counted and logged.
                    state.metrics.record_tunedb_append_failure();
                    eprintln!("[an5d-serve] tunedb append failed (result still served): {err}");
                }
                outcome.result
            }
            None => {
                shard.record_dbless_tune();
                pipeline
                    .tune_with_cache(&problem, shard.device(), &space, Arc::clone(shard.cache()))
                    .map_err(tune_error)?
            }
        };
        Ok(api::tune_response(&result))
    })
}

/// `/batch` streams by default; `?stream=0` (or `false`) buffers.
fn batch_streams(request: &Request) -> bool {
    !matches!(request.query_param("stream"), Some("0" | "false"))
}

/// Wrap a chunk source so the shared [`Metrics`] see the stream: TTFB
/// on the first chunk, per-chunk and per-byte counters as it flows, and
/// the endpoint's latency/status record when it ends (dispatch skips
/// the immediate record for streamed bodies — the handler only set the
/// stream up).
fn metered_stream(
    state: &ServiceState,
    path: &'static str,
    mut source: ChunkSource,
) -> ChunkSource {
    let metrics = Arc::clone(&state.metrics);
    let started = Instant::now();
    let mut first = true;
    let mut finished = false;
    Box::new(move || match source() {
        Ok(Some(chunk)) => {
            if first {
                first = false;
                metrics.record_stream_ttfb(path, started.elapsed());
            }
            metrics.record_stream_chunk(path, chunk.len());
            Ok(Some(chunk))
        }
        Ok(None) => {
            if !finished {
                finished = true;
                metrics.record(path, started.elapsed(), true);
            }
            Ok(None)
        }
        Err(e) => {
            if !finished {
                finished = true;
                metrics.record(path, started.elapsed(), false);
            }
            Err(e)
        }
    })
}

fn codegen_endpoint(state: &ServiceState, body: &Json, stream: bool) -> Result<Response, ApiError> {
    let shard = routed(state, body, RoutePolicy::LeastLoaded)?;
    shard.observe(|| {
        let (_, plan) = planned(shard, body)?;
        let code = generate_cuda_for_plan(&plan);
        if stream {
            // The JSON body is rendered lazily chunk by chunk — the
            // first chunk reaches the reactor (and the wire) before the
            // serialized body exists.
            let source = api::codegen_chunk_source(code, state.stream_chunk);
            Ok(Response::stream(
                200,
                "application/json",
                metered_stream(state, "/codegen", source),
            ))
        } else {
            Ok(ok(api::codegen_response(&code)))
        }
    })
}

fn execute_endpoint(state: &ServiceState, body: &Json, stream: bool) -> Result<Response, ApiError> {
    let shard = routed(state, body, RoutePolicy::LeastLoaded)?;
    shard.observe(|| {
        let pipeline = api::pipeline_from(body)?;
        let problem = api::problem_from(body, &pipeline)?;
        let config = api::config_from(body)?;
        let seed = api::seed_from(body)?;
        let job = BatchJob::new(
            pipeline.def().clone(),
            problem.interior(),
            problem.time_steps(),
            config,
        )
        .with_init(GridInit::Hash { seed });
        let mut results = shard.driver().run(&[job]);
        let outcome = results
            .pop()
            .expect("one job in yields one result out")
            .map_err(|e| match e.error {
                an5d::BatchFailure::DeadlineExceeded => {
                    // The batch checkpoint refused the job: 0 of 1 items
                    // ran within the request's budget.
                    ApiError::deadline_exceeded(e.to_string(), 0, 1)
                }
                _ => ApiError::new(e.to_string()),
            })?;
        let body = api::execute_response(&outcome).render();
        if stream {
            let source = api::string_chunk_source(body, state.stream_chunk);
            Ok(Response::stream(
                200,
                "application/json",
                metered_stream(state, "/execute", source),
            ))
        } else {
            Ok(Response::new(200, body))
        }
    })
}

/// `POST /batch`: run a list of `/execute`-style jobs through the
/// routed shard's [`an5d::BatchDriver`]. Streaming (the default) emits
/// one NDJSON line per job *as each job finishes* — jobs run one at a
/// time inside the chunk source, so early results reach the client
/// while later jobs are still executing. The buffered opt-out
/// (`?stream=0`) produces byte-identical lines in one body.
fn batch_endpoint(state: &ServiceState, body: &Json, stream: bool) -> Result<Response, ApiError> {
    let shard = routed(state, body, RoutePolicy::LeastLoaded)?;
    shard.observe(|| {
        let jobs = api::batch_jobs_from(body)?;
        let driver = shard.driver().clone();
        if stream {
            let source = api::batch_chunk_source(driver, jobs);
            Ok(Response::stream(
                200,
                "application/x-ndjson",
                metered_stream(state, "/batch", source),
            ))
        } else {
            let mut out = String::new();
            for (index, job) in jobs.into_iter().enumerate() {
                let result = driver
                    .run(&[job])
                    .pop()
                    .expect("one job in yields one result out");
                out.push_str(&api::batch_job_line(index, &result));
            }
            let mut response = Response::new(200, out);
            response.content_type = "application/x-ndjson";
            Ok(response)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use an5d::SerialBackend;

    fn state() -> ServiceState {
        ServiceState::new(Arc::new(SerialBackend), 64)
    }

    fn post(state: &ServiceState, path: &str, body: &str) -> Response {
        dispatch(state, &Request::new("POST", path, body.as_bytes()))
    }

    #[test]
    fn unknown_path_and_wrong_method_are_rejected() {
        let state = state();
        assert_eq!(post(&state, "/nope", "{}").status, 404);
        let get_tune = Request::new("GET", "/tune", b"");
        assert_eq!(dispatch(&state, &get_tune).status, 405);
    }

    #[test]
    fn malformed_bodies_get_400s() {
        let state = state();
        assert_eq!(post(&state, "/plan", "").status, 400);
        assert_eq!(post(&state, "/plan", "{not json").status, 400);
        assert_eq!(post(&state, "/plan", "{}").status, 400);
        assert_eq!(
            post(&state, "/execute", r#"{"benchmark":"nope"}"#).status,
            400
        );
    }

    #[test]
    fn plan_and_codegen_share_the_cache() {
        let state = state();
        let body = r#"{"benchmark":"j2d5pt","interior":[64,64],"steps":8,
                       "config":{"bt":2,"bs":[32],"precision":"double"}}"#;
        assert_eq!(post(&state, "/plan", body).status, 200);
        let misses = state.fleet().aggregate_cache_stats().misses;
        assert_eq!(misses, 1);
        // Same key through a different endpoint: both requests are
        // device-agnostic, so the idle-fleet router sends them to the
        // same shard and the second is served from its cache.
        let response = post(&state, "/codegen", body);
        assert_eq!(response.status, 200);
        assert!(response.body.contains("__global__"));
        let stats = state.fleet().aggregate_cache_stats();
        assert_eq!(stats.misses, misses);
        assert!(stats.hits >= 1);
    }

    #[test]
    fn named_devices_route_to_their_own_shard() {
        let state = state();
        let request = |device: &str| {
            format!(
                r#"{{"benchmark":"j2d5pt","interior":[64,64],"steps":8,"device":"{device}",
                     "config":{{"bt":2,"bs":[32],"precision":"double"}}}}"#
            )
        };
        assert_eq!(post(&state, "/predict", &request("v100")).status, 200);
        assert_eq!(post(&state, "/predict", &request("p100")).status, 200);
        let shard = |id: &str| {
            state
                .fleet()
                .shard(&an5d::DeviceId::new(id))
                .expect("registered")
        };
        // The identical plan key was built once per device shard — that
        // is the per-device keying, not a shared flat cache.
        assert_eq!(shard("v100").cache().stats().misses, 1);
        assert_eq!(shard("p100").cache().stats().misses, 1);
        assert_eq!(shard("v100").stats().requests, 1);
        assert_eq!(shard("p100").stats().requests, 1);
        assert_eq!(shard("a100").stats().requests, 0);
        // Predictions differ across devices: the shard's profile was used.
        let v = post(&state, "/predict", &request("v100"));
        let p = post(&state, "/predict", &request("p100"));
        assert_ne!(v.body, p.body, "device-specific predictions");
    }

    #[test]
    fn unknown_devices_are_rejected_with_the_registry_set() {
        let state = state();
        let response = post(
            &state,
            "/predict",
            r#"{"benchmark":"j2d5pt","interior":[64,64],"steps":8,"device":"h100",
                "config":{"bt":2,"bs":[32],"precision":"double"}}"#,
        );
        assert_eq!(response.status, 400);
        for id in ["a100", "p100", "small", "v100"] {
            assert!(response.body.contains(id), "{}", response.body);
        }
    }

    #[test]
    fn devices_endpoint_lists_the_fleet() {
        let state = state();
        let response = dispatch(&state, &Request::new("GET", "/devices", b""));
        assert_eq!(response.status, 200);
        let parsed = json::parse(&response.body).unwrap();
        assert_eq!(parsed.get("default").unwrap().as_str(), Some("v100"));
        let devices = parsed.get("devices").unwrap().as_array().unwrap();
        assert!(devices.len() >= 4, "fleet of {}", devices.len());
        let first = &devices[0];
        assert_eq!(first.get("id").unwrap().as_str(), Some("a100"));
        assert!(first.get("sm_count").unwrap().as_usize().unwrap() > 0);
        // POST is the wrong method.
        let post_devices = Request::new("POST", "/devices", b"{}");
        assert_eq!(dispatch(&state, &post_devices).status, 405);
    }

    #[test]
    fn execute_is_deterministic_and_excludes_per_call_metadata() {
        let state = state();
        let body = r#"{"benchmark":"j2d5pt","interior":[24,24],"steps":5,
                       "config":{"bt":2,"bs":[12],"precision":"double"}}"#;
        let first = post(&state, "/execute", body);
        let second = post(&state, "/execute", body);
        assert_eq!(first.status, 200);
        assert_eq!(
            first.body, second.body,
            "cold and warm responses must be bit-identical"
        );
        assert!(first.body.contains("\"checksum\""));
        assert!(!first.body.contains("cache"), "{}", first.body);
    }

    #[test]
    fn stats_reports_endpoint_latencies_and_cache() {
        let state = state();
        let body = r#"{"benchmark":"star2d1r","interior":[32,32],"steps":4,
                       "config":{"bt":1,"bs":[16],"precision":"double"}}"#;
        post(&state, "/plan", body);
        post(&state, "/plan", body);
        let stats = dispatch(&state, &Request::new("GET", "/stats", b""));
        assert_eq!(stats.status, 200);
        let parsed = json::parse(&stats.body).unwrap();
        let plan = parsed
            .get("endpoints")
            .and_then(|e| e.get("/plan"))
            .expect("/plan endpoint recorded");
        assert_eq!(plan.get("count").unwrap().as_usize(), Some(2));
        let hit_rate = parsed
            .get("cache")
            .and_then(|c| c.get("hit_rate"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((hit_rate - 0.5).abs() < 1e-12, "hit rate {hit_rate}");
        // The fleet breakdown and pool observability ride along.
        let devices = parsed.get("devices").expect("per-device stats");
        let busy: Vec<u64> = state
            .fleet()
            .shards()
            .map(|s| {
                devices
                    .get(s.id().as_str())
                    .and_then(|d| d.get("requests"))
                    .and_then(Json::as_usize)
                    .unwrap() as u64
            })
            .collect();
        assert_eq!(busy.iter().sum::<u64>(), 2, "both /plan requests tracked");
        let pool = parsed.get("pool").expect("pool stats");
        assert!(pool.get("workers").is_some());
        assert!(pool.get("queued_batches").is_some());
    }

    #[test]
    fn stats_and_metrics_report_backend_execute_latency() {
        let state = state();
        let body = r#"{"benchmark":"j2d5pt","interior":[24,24],"steps":5,
                       "config":{"bt":2,"bs":[12],"precision":"double"}}"#;
        assert_eq!(post(&state, "/execute", body).status, 200);

        let stats = dispatch(&state, &Request::new("GET", "/stats", b""));
        let parsed = json::parse(&stats.body).unwrap();
        let serial = parsed
            .get("backends")
            .and_then(|b| b.get("serial"))
            .expect("backend.execute latency recorded under the backend name");
        assert!(serial.get("executes").unwrap().as_usize().unwrap() >= 1);
        assert!(serial.get("p99_us").is_some());

        let metrics = dispatch(&state, &Request::new("GET", "/metrics", b""));
        assert!(
            metrics
                .body
                .contains("an5d_backend_executes_total{backend=\"serial\"}"),
            "per-backend execute counter missing"
        );
        assert!(metrics
            .body
            .contains("an5d_backend_execute_us_bucket{backend=\"serial\""));
    }

    #[test]
    fn parse_endpoint_detects_a_stencil_from_source() {
        let state = state();
        let source = an5d::An5d::benchmark("j2d5pt").unwrap().c_source();
        let body = Json::obj(vec![
            ("source", Json::str(&source)),
            ("name", Json::str("mine")),
        ]);
        let response = post(&state, "/parse", &body.render());
        assert_eq!(response.status, 200);
        let parsed = json::parse(&response.body).unwrap();
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("mine"));
        assert_eq!(parsed.get("radius").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn tune_endpoint_returns_a_ranked_result() {
        let state = state();
        let body = r#"{"benchmark":"j2d5pt","interior":[512,512],"steps":50,
                       "device":"v100","precision":"single","space":"quick"}"#;
        let response = post(&state, "/tune", body);
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed = json::parse(&response.body).unwrap();
        assert!(parsed.get("best").is_some());
        let v100 = state
            .fleet()
            .shard(&an5d::DeviceId::new("v100"))
            .unwrap()
            .cache()
            .stats();
        assert!(v100.misses > 0, "tuner planned via the v100 shard cache");
    }
}
