//! Typed extraction of request parameters from JSON and deterministic
//! rendering of pipeline results back to JSON.
//!
//! Every `*_response` function here is **pure and deterministic**: the
//! same pipeline value always renders to the same bytes, and no
//! per-call operational metadata (cache hits, latency) leaks into the
//! body — that lives in `/stats`. The integration tests and the
//! `load_gen` harness exploit this to assert that server responses are
//! bit-identical to direct [`An5d`] facade calls.

use crate::http::ChunkSource;
use crate::json::Json;
use an5d::{
    suite, An5d, BatchDriver, BatchError, BatchJob, BatchOutcome, BlockConfig, CacheStats,
    CudaCode, DetectedStencil, DeviceId, DeviceRegistry, FrameworkScheme, GpuDevice, GridInit,
    KernelPlan, ModelPrediction, PoolStats, Precision, RegisterCap, SearchSpace, StencilProblem,
    TrafficCounters, TunedCandidate, TuningResult,
};
use std::collections::VecDeque;

/// A request-level problem: maps to a 400 with `{"error": …}` — unless
/// `deadline` is set, in which case the dispatcher answers `504` with a
/// partial-progress body instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Human-readable message rendered into the JSON error body.
    pub message: String,
    /// `Some((completed, total))` when the request's deadline expired
    /// mid-processing.
    pub deadline: Option<(usize, usize)>,
}

impl ApiError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            deadline: None,
        }
    }

    /// The request's deadline expired after `completed` of `total`
    /// units of work.
    pub(crate) fn deadline_exceeded(
        message: impl Into<String>,
        completed: usize,
        total: usize,
    ) -> Self {
        Self {
            message: message.into(),
            deadline: Some((completed, total)),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ApiError {}

fn int(value: usize) -> Json {
    Json::Int(value as i128)
}

fn big(value: u128) -> Json {
    Json::Int(i128::try_from(value).unwrap_or(i128::MAX))
}

/// `{"error": message}` — the uniform error body.
#[must_use]
pub fn error_body(message: &str) -> String {
    Json::obj(vec![("error", Json::str(message))]).render()
}

/// The structured `504 Gateway Timeout` body: the uniform error field
/// plus how far processing got before the request's deadline expired.
#[must_use]
pub fn deadline_error_body(message: &str, completed: usize, total: usize) -> String {
    Json::obj(vec![
        ("error", Json::str(message)),
        ("deadline_exceeded", Json::Bool(true)),
        ("completed", int(completed)),
        ("total", int(total)),
    ])
    .render()
}

// ---------------------------------------------------------------------
// Request-side extraction
// ---------------------------------------------------------------------

fn require<'a>(body: &'a Json, key: &str) -> Result<&'a Json, ApiError> {
    body.get(key)
        .ok_or_else(|| ApiError::new(format!("missing required field \"{key}\"")))
}

/// Build the [`An5d`] pipeline named by a request body: either
/// `"benchmark": "<suite name>"` or `"source": "<C code>"` +
/// `"name": "<label>"`, optionally with `"scheme"`.
///
/// # Errors
///
/// Rejects bodies naming neither (or both) stencil forms, unknown
/// benchmarks, unparsable DSL sources and unknown schemes.
pub fn pipeline_from(body: &Json) -> Result<An5d, ApiError> {
    let pipeline = match (body.get("benchmark"), body.get("source")) {
        (Some(benchmark), None) => {
            let name = benchmark
                .as_str()
                .ok_or_else(|| ApiError::new("\"benchmark\" must be a string"))?;
            An5d::benchmark(name).map_err(|e| ApiError::new(e.to_string()))?
        }
        (None, Some(source)) => {
            let source = source
                .as_str()
                .ok_or_else(|| ApiError::new("\"source\" must be a string"))?;
            let name = require(body, "name")?
                .as_str()
                .ok_or_else(|| ApiError::new("\"name\" must be a string"))?;
            An5d::from_c_source(source, name).map_err(|e| ApiError::new(e.to_string()))?
        }
        (Some(_), Some(_)) => {
            return Err(ApiError::new(
                "give either \"benchmark\" or \"source\", not both",
            ))
        }
        (None, None) => {
            return Err(ApiError::new(
                "missing stencil: give \"benchmark\" or \"source\" + \"name\"",
            ))
        }
    };
    Ok(pipeline.with_scheme(scheme_from(body)?))
}

/// Extract the optional `"scheme"` field (default AN5D).
///
/// # Errors
///
/// Rejects unknown scheme names.
pub fn scheme_from(body: &Json) -> Result<FrameworkScheme, ApiError> {
    match body.get("scheme") {
        None => Ok(FrameworkScheme::an5d()),
        Some(value) => match value.as_str() {
            Some("an5d") => Ok(FrameworkScheme::an5d()),
            Some("stencilgen") => Ok(FrameworkScheme::stencilgen()),
            Some("an5d_no_associative") => Ok(FrameworkScheme::an5d_no_associative()),
            _ => Err(ApiError::new(
                "\"scheme\" must be \"an5d\", \"stencilgen\" or \"an5d_no_associative\"",
            )),
        },
    }
}

fn usize_list(value: &Json, key: &str) -> Result<Vec<usize>, ApiError> {
    value
        .as_array()
        .ok_or_else(|| ApiError::new(format!("\"{key}\" must be an array of integers")))?
        .iter()
        .map(|v| {
            v.as_usize().ok_or_else(|| {
                ApiError::new(format!("\"{key}\" entries must be non-negative integers"))
            })
        })
        .collect()
}

/// Extract `interior` + `steps` into a [`StencilProblem`] for the
/// pipeline's stencil.
///
/// # Errors
///
/// Rejects missing/ill-typed fields and extents invalid for the stencil.
pub fn problem_from(body: &Json, pipeline: &An5d) -> Result<StencilProblem, ApiError> {
    let interior = usize_list(require(body, "interior")?, "interior")?;
    let steps = require(body, "steps")?
        .as_usize()
        .ok_or_else(|| ApiError::new("\"steps\" must be a non-negative integer"))?;
    pipeline
        .problem(&interior, steps)
        .map_err(|e| ApiError::new(e.to_string()))
}

fn precision_value(value: &Json) -> Result<Precision, ApiError> {
    match value.as_str() {
        Some("single" | "float") => Ok(Precision::Single),
        Some("double") => Ok(Precision::Double),
        _ => Err(ApiError::new(
            "\"precision\" must be \"single\" or \"double\"",
        )),
    }
}

/// Extract the top-level `"precision"` field.
///
/// # Errors
///
/// Rejects missing or unknown precisions.
pub fn precision_from(body: &Json) -> Result<Precision, ApiError> {
    precision_value(require(body, "precision")?)
}

/// Extract the `"config"` object into a [`BlockConfig`].
///
/// # Errors
///
/// Rejects missing/ill-typed fields and configurations the planner
/// rejects outright (zero extents, rank mismatch).
pub fn config_from(body: &Json) -> Result<BlockConfig, ApiError> {
    let config = require(body, "config")?;
    let bt = require(config, "bt")?
        .as_usize()
        .ok_or_else(|| ApiError::new("\"config.bt\" must be a non-negative integer"))?;
    let bs = usize_list(require(config, "bs")?, "config.bs")?;
    let hsn = match config.get("hsn") {
        None | Some(Json::Null) => None,
        Some(value) => Some(
            value
                .as_usize()
                .ok_or_else(|| ApiError::new("\"config.hsn\" must be an integer or null"))?,
        ),
    };
    let precision = precision_value(require(config, "precision")?)?;
    BlockConfig::new(bt, &bs, hsn, precision).map_err(|e| ApiError::new(e.to_string()))
}

/// Extract the optional `"device"` field, resolving any accepted
/// spelling (canonical id or alias, case-insensitive) through the
/// fleet's [`DeviceRegistry`]. `None` means the request named no device
/// and the router picks the shard.
///
/// # Errors
///
/// Rejects names the registry does not know; the error message lists
/// the accepted set, so registering a new profile makes it usable (and
/// self-documenting) here with no code change.
pub fn device_from(body: &Json, registry: &DeviceRegistry) -> Result<Option<DeviceId>, ApiError> {
    match body.get("device") {
        None => Ok(None),
        Some(value) => {
            let name = value
                .as_str()
                .ok_or_else(|| unknown_device_error(registry))?;
            registry
                .resolve_id(name)
                .map(Some)
                .ok_or_else(|| unknown_device_error(registry))
        }
    }
}

/// The uniform unknown-device error, with the accepted set generated
/// from the registry — the single source for this message, shared by
/// request extraction and the fleet router.
#[must_use]
pub fn unknown_device_error(registry: &DeviceRegistry) -> ApiError {
    ApiError::new(format!(
        "\"device\" must be one of {}",
        registry.accepted_names()
    ))
}

/// Extract the `"space"` field (`"quick"` / `"paper"`, default quick)
/// for a stencil rank and precision.
///
/// # Errors
///
/// Rejects unknown space names.
pub fn space_from(body: &Json, ndim: usize, precision: Precision) -> Result<SearchSpace, ApiError> {
    match body.get("space") {
        None => Ok(SearchSpace::quick(ndim, precision)),
        Some(value) => match value.as_str() {
            Some("quick") => Ok(SearchSpace::quick(ndim, precision)),
            Some("paper") => Ok(SearchSpace::paper(ndim, precision)),
            _ => Err(ApiError::new("\"space\" must be \"quick\" or \"paper\"")),
        },
    }
}

/// Extract the optional `"seed"` for the execute endpoint's deterministic
/// initial grid (default `0x5EED`, matching [`an5d::BatchJob::new`]).
///
/// # Errors
///
/// Rejects ill-typed seeds.
pub fn seed_from(body: &Json) -> Result<u64, ApiError> {
    match body.get("seed") {
        None => Ok(0x5EED),
        Some(value) => value
            .as_usize()
            .map(|v| v as u64)
            .ok_or_else(|| ApiError::new("\"seed\" must be a non-negative integer")),
    }
}

// ---------------------------------------------------------------------
// Response-side rendering
// ---------------------------------------------------------------------

/// Response body for `/parse`.
#[must_use]
pub fn parse_response(detected: &DetectedStencil) -> Json {
    let def = &detected.def;
    Json::obj(vec![
        ("name", Json::str(def.name())),
        ("ndim", int(def.ndim())),
        ("radius", int(def.radius())),
        ("flops_per_cell", int(def.flops_per_cell())),
        ("shape_class", Json::Str(def.shape_class().to_string())),
        ("array", Json::str(&detected.array_name)),
        ("time_var", Json::str(&detected.time_var)),
        (
            "space_vars",
            Json::Arr(detected.space_vars.iter().map(|v| Json::str(v)).collect()),
        ),
    ])
}

fn config_json(config: &BlockConfig) -> Json {
    Json::obj(vec![
        ("bt", int(config.bt())),
        ("bs", Json::usize_array(config.bs())),
        ("hsn", config.hsn().map_or(Json::Null, int)),
        (
            "precision",
            Json::str(match config.precision() {
                Precision::Single => "single",
                Precision::Double => "double",
            }),
        ),
    ])
}

fn register_cap_json(cap: RegisterCap) -> Json {
    match cap {
        RegisterCap::Limit(n) => int(n),
        RegisterCap::Unlimited => Json::Null,
    }
}

/// Response body for `/plan`.
#[must_use]
pub fn plan_response(plan: &KernelPlan) -> Json {
    let geometry = plan.geometry();
    let resources = plan.resources();
    Json::obj(vec![
        ("stencil", Json::str(plan.def().name())),
        ("scheme", Json::str(plan.scheme().name)),
        ("kernel", Json::Str(an5d::kernel_name_for(plan))),
        ("config", config_json(plan.config())),
        (
            "geometry",
            Json::obj(vec![
                ("nthr", int(geometry.nthr)),
                ("halo_per_side", int(geometry.halo_per_side)),
                (
                    "compute_region",
                    Json::usize_array(&geometry.compute_region),
                ),
                ("tiles_per_dim", Json::usize_array(&geometry.tiles_per_dim)),
                ("thread_blocks", int(geometry.thread_blocks)),
                ("stream_blocks", int(geometry.stream_blocks)),
                ("total_thread_blocks", int(geometry.total_thread_blocks)),
            ]),
        ),
        (
            "resources",
            Json::obj(vec![
                ("registers_per_thread", int(resources.registers_per_thread)),
                ("shared_buffers", int(resources.shared_buffers)),
                (
                    "shared_bytes_per_block",
                    int(resources.shared_bytes_per_block),
                ),
            ]),
        ),
    ])
}

/// Response body for `/predict`.
#[must_use]
pub fn predict_response(prediction: &ModelPrediction) -> Json {
    Json::obj(vec![
        ("seconds", Json::Num(prediction.seconds)),
        ("gflops", Json::Num(prediction.gflops)),
        ("time_compute", Json::Num(prediction.time_compute)),
        ("time_global", Json::Num(prediction.time_global)),
        ("time_shared", Json::Num(prediction.time_shared)),
        ("bottleneck", Json::Str(prediction.bottleneck.to_string())),
        ("eff_alu", Json::Num(prediction.eff_alu)),
        ("eff_sm", Json::Num(prediction.eff_sm)),
        ("total_gm_bytes", big(prediction.total_gm_bytes)),
        ("total_sm_bytes", big(prediction.total_sm_bytes)),
        ("total_flops", big(prediction.total_flops)),
    ])
}

fn candidate_json(candidate: &TunedCandidate) -> Json {
    Json::obj(vec![
        ("config", config_json(&candidate.config)),
        ("register_cap", register_cap_json(candidate.register_cap)),
        ("predicted_gflops", Json::Num(candidate.predicted_gflops)),
        ("measured_gflops", Json::Num(candidate.measured_gflops)),
        ("measured_gcells", Json::Num(candidate.measured_gcells)),
        ("seconds", Json::Num(candidate.seconds)),
    ])
}

/// Response body for `/tune`.
#[must_use]
pub fn tune_response(result: &TuningResult) -> Json {
    Json::obj(vec![
        ("best", candidate_json(&result.best)),
        (
            "measured",
            Json::Arr(result.measured.iter().map(candidate_json).collect()),
        ),
        ("ranked_candidates", int(result.ranked_candidates)),
        ("total_candidates", int(result.total_candidates)),
    ])
}

/// Response body for `/codegen`.
#[must_use]
pub fn codegen_response(code: &CudaCode) -> Json {
    Json::obj(vec![
        ("kernel_name", Json::str(&code.kernel_name)),
        ("kernel_source", Json::str(&code.kernel_source)),
        ("host_source", Json::str(&code.host_source)),
        ("total_lines", int(code.total_lines())),
    ])
}

fn counters_json(counters: &TrafficCounters) -> Json {
    Json::obj(vec![
        ("gm_reads", big(counters.gm_reads)),
        ("gm_writes", big(counters.gm_writes)),
        ("sm_reads", big(counters.sm_reads)),
        ("sm_writes", big(counters.sm_writes)),
        ("flops", big(counters.flops)),
        ("cell_updates", big(counters.cell_updates)),
        ("valid_updates", big(counters.valid_updates)),
        ("syncs", big(counters.syncs)),
        ("thread_blocks", big(counters.thread_blocks)),
        ("kernel_launches", big(counters.kernel_launches)),
    ])
}

/// Response body for `/execute`.
///
/// Deliberately excludes the per-call plan-cache-hit flag and elapsed
/// time: those are operational metadata (visible in `/stats`), and
/// including them would break the bit-identical-response guarantee.
#[must_use]
pub fn execute_response(outcome: &BatchOutcome) -> Json {
    Json::obj(vec![
        ("name", Json::str(&outcome.name)),
        ("checksum", Json::Num(outcome.checksum)),
        ("counters", counters_json(&outcome.counters)),
    ])
}

/// The `"cache"` object of `/stats`.
#[must_use]
pub fn cache_stats_json(stats: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::Int(i128::from(stats.hits))),
        ("misses", Json::Int(i128::from(stats.misses))),
        ("coalesced", Json::Int(i128::from(stats.coalesced))),
        ("entries", int(stats.entries)),
        ("capacity", int(stats.capacity)),
        ("hit_rate", Json::Num(stats.hit_rate())),
    ])
}

/// One profile of the `/devices` listing.
#[must_use]
pub fn device_json(id: &DeviceId, device: &GpuDevice) -> Json {
    Json::obj(vec![
        ("id", Json::Str(id.to_string())),
        ("name", Json::str(&device.name)),
        ("sm_count", int(device.sm_count)),
        ("peak_gflops_f32", Json::Num(device.peak_gflops_f32)),
        ("peak_gflops_f64", Json::Num(device.peak_gflops_f64)),
        ("peak_mem_bw", Json::Num(device.peak_mem_bw)),
        ("measured_mem_bw_f32", Json::Num(device.measured_mem_bw_f32)),
        ("measured_mem_bw_f64", Json::Num(device.measured_mem_bw_f64)),
        ("shared_mem_per_sm", int(device.shared_mem_per_sm)),
        ("max_threads_per_sm", int(device.max_threads_per_sm)),
        ("registers_per_sm", int(device.registers_per_sm)),
    ])
}

/// Response body for `/devices`: every registered profile, in id order,
/// plus the default the router uses for device-defaulting endpoints.
#[must_use]
pub fn devices_response(registry: &DeviceRegistry) -> Json {
    Json::obj(vec![
        ("default", Json::Str(registry.default_id().to_string())),
        (
            "devices",
            Json::Arr(
                registry
                    .devices()
                    .map(|(id, device)| device_json(id, device))
                    .collect(),
            ),
        ),
    ])
}

/// The per-device `"tunedb"` object of `/stats`: read-through hit/miss
/// counters, warm-start counts and tuner invocations for one shard.
#[must_use]
pub fn shard_tunedb_json(stats: &crate::fleet::ShardTuneDbStats) -> Json {
    Json::obj(vec![
        ("hits", Json::Int(i128::from(stats.hits))),
        ("misses", Json::Int(i128::from(stats.misses))),
        ("refreshes", Json::Int(i128::from(stats.refreshes))),
        ("warmed", Json::Int(i128::from(stats.warmed))),
        ("warmed_plans", Json::Int(i128::from(stats.warmed_plans))),
        ("tuner_runs", Json::Int(i128::from(stats.tuner_runs))),
    ])
}

/// The `"pool"` object of `/stats`: shared worker-pool observability
/// (queue depth, items executed, batch wall times).
#[must_use]
pub fn pool_stats_json(stats: &PoolStats) -> Json {
    Json::obj(vec![
        ("workers", int(stats.workers)),
        ("queued_batches", int(stats.queued_batches)),
        (
            "items_executed",
            Json::Int(i128::from(stats.items_executed)),
        ),
        (
            "batches_executed",
            Json::Int(i128::from(stats.batches_executed)),
        ),
        (
            "mean_batch_us",
            Json::Int(i128::from(stats.mean_batch_micros())),
        ),
        (
            "max_batch_us",
            Json::Int(i128::from(stats.max_batch_micros)),
        ),
    ])
}

/// Lookup of the benchmark suite for `/parse` of a known benchmark is
/// not needed — `/parse` takes DSL source. Exposed for the handlers'
/// convenience: `suite::by_name` with an API-shaped error.
///
/// # Errors
///
/// Rejects unknown benchmark names.
pub fn benchmark_def(name: &str) -> Result<an5d::StencilDef, ApiError> {
    suite::by_name(name).ok_or_else(|| ApiError::new(format!("unknown benchmark \"{name}\"")))
}

// ---------------------------------------------------------------------
// Streaming bodies and /batch
// ---------------------------------------------------------------------

/// Most jobs one `/batch` request may submit.
pub const MAX_BATCH_JOBS: usize = 256;

/// JSON-escape `piece` exactly as [`Json::render`] would inside a
/// string literal (the surrounding quotes stripped). Escaping is
/// char-local, so escaping a string piecewise at char boundaries is
/// byte-identical to escaping it whole — the invariant the lazy
/// `/codegen` stream rests on.
fn escaped_fragment(piece: &str) -> String {
    let rendered = Json::str(piece).render();
    rendered[1..rendered.len() - 1].to_string()
}

/// The largest char-boundary cut of `s` at most `max` bytes (at least
/// one char when `s` is non-empty, so progress is always made).
fn char_floor(s: &str, max: usize) -> usize {
    if max >= s.len() {
        return s.len();
    }
    let mut cut = max;
    while cut > 0 && !s.is_char_boundary(cut) {
        cut -= 1;
    }
    if cut == 0 {
        s.chars().next().map_or(0, char::len_utf8)
    } else {
        cut
    }
}

/// One piece of a lazily rendered body: either literal bytes or raw
/// text that is JSON-escaped as it is emitted.
enum Piece {
    Lit(String),
    Escape(String),
}

fn pieces_chunk_source(pieces: Vec<Piece>, chunk: usize) -> ChunkSource {
    let chunk = chunk.max(1);
    let mut parts: VecDeque<Piece> = pieces.into();
    Box::new(move || {
        let mut out = Vec::new();
        while out.len() < chunk {
            let Some(part) = parts.pop_front() else { break };
            let budget = chunk - out.len();
            match part {
                Piece::Lit(s) => {
                    let cut = char_floor(&s, budget);
                    out.extend_from_slice(&s.as_bytes()[..cut]);
                    if cut < s.len() {
                        parts.push_front(Piece::Lit(s[cut..].to_string()));
                    }
                }
                Piece::Escape(s) => {
                    let cut = char_floor(&s, budget);
                    out.extend_from_slice(escaped_fragment(&s[..cut]).as_bytes());
                    if cut < s.len() {
                        parts.push_front(Piece::Escape(s[cut..].to_string()));
                    }
                }
            }
        }
        Ok(if out.is_empty() { None } else { Some(out) })
    })
}

/// A pull source producing the `/codegen` response body in chunks of
/// roughly `chunk` bytes, byte-identical to
/// `codegen_response(&code).render()` — but rendered lazily, so the
/// first chunk exists (and can hit the wire) before the rest of the
/// body has been serialized.
#[must_use]
pub fn codegen_chunk_source(code: CudaCode, chunk: usize) -> ChunkSource {
    // The literal skeleton mirrors `codegen_response` field for field
    // (same keys, same order); the big sources are spliced in as
    // lazily-escaped text. `total_lines` is computed up front — it
    // derives from the sources this function consumes.
    let name = Json::str(&code.kernel_name).render();
    let total = int(code.total_lines()).render();
    let pieces = vec![
        Piece::Lit(format!("{{\"kernel_name\":{name},\"kernel_source\":\"")),
        Piece::Escape(code.kernel_source),
        Piece::Lit("\",\"host_source\":\"".to_string()),
        Piece::Escape(code.host_source),
        Piece::Lit(format!("\",\"total_lines\":{total}}}")),
    ];
    pieces_chunk_source(pieces, chunk)
}

/// A pull source slicing an already-rendered body into chunks of at
/// most `chunk` bytes (used by `/execute?stream=1`).
#[must_use]
pub fn string_chunk_source(body: String, chunk: usize) -> ChunkSource {
    let chunk = chunk.max(1);
    let bytes = body.into_bytes();
    let mut pos = 0;
    Box::new(move || {
        if pos >= bytes.len() {
            return Ok(None);
        }
        let end = (pos + chunk).min(bytes.len());
        let piece = bytes[pos..end].to_vec();
        pos = end;
        Ok(Some(piece))
    })
}

/// Extract the `/batch` job list: `"jobs"` is a non-empty array of at
/// most [`MAX_BATCH_JOBS`] `/execute`-style specs (stencil + interior +
/// steps + config + optional seed). The top-level `"device"` routes the
/// whole batch; per-job devices are not supported.
///
/// # Errors
///
/// Rejects a missing/empty/oversized list and any invalid job spec
/// (prefixed with its index, so the client can tell which one).
pub fn batch_jobs_from(body: &Json) -> Result<Vec<BatchJob>, ApiError> {
    let jobs = require(body, "jobs")?
        .as_array()
        .ok_or_else(|| ApiError::new("\"jobs\" must be an array"))?;
    if jobs.is_empty() {
        return Err(ApiError::new("\"jobs\" must contain at least one job"));
    }
    if jobs.len() > MAX_BATCH_JOBS {
        return Err(ApiError::new(format!(
            "\"jobs\" lists {} jobs; at most {MAX_BATCH_JOBS} per request",
            jobs.len()
        )));
    }
    jobs.iter()
        .enumerate()
        .map(|(index, spec)| {
            batch_job_from(spec).map_err(|e| ApiError::new(format!("jobs[{index}]: {}", e.message)))
        })
        .collect()
}

fn batch_job_from(spec: &Json) -> Result<BatchJob, ApiError> {
    let pipeline = pipeline_from(spec)?;
    let problem = problem_from(spec, &pipeline)?;
    let config = config_from(spec)?;
    let seed = seed_from(spec)?;
    Ok(BatchJob::new(
        pipeline.def().clone(),
        problem.interior(),
        problem.time_steps(),
        config,
    )
    .with_init(GridInit::Hash { seed }))
}

/// Render one `/batch` NDJSON line (newline included) for job `index`.
/// Success lines carry the `/execute` response fields; failures carry
/// the error message and, for deadline refusals, a
/// `"deadline_exceeded":true` marker.
#[must_use]
pub fn batch_job_line(index: usize, result: &Result<BatchOutcome, BatchError>) -> String {
    let line = match result {
        Ok(outcome) => Json::obj(vec![
            ("index", int(index)),
            ("name", Json::str(&outcome.name)),
            ("checksum", Json::Num(outcome.checksum)),
            ("counters", counters_json(&outcome.counters)),
        ]),
        Err(e) => {
            let mut fields = vec![
                ("index", int(index)),
                ("name", Json::str(&e.name)),
                ("error", Json::str(&e.to_string())),
            ];
            if e.error == an5d::BatchFailure::DeadlineExceeded {
                fields.push(("deadline_exceeded", Json::Bool(true)));
            }
            Json::obj(fields)
        }
    };
    let mut rendered = line.render();
    rendered.push('\n');
    rendered
}

/// A pull source running `jobs` through `driver` one at a time,
/// yielding each job's NDJSON line as it completes — the streaming
/// `/batch` body. Jobs run inside the source (on the server worker
/// draining it), so earlier lines reach the client while later jobs
/// are still executing; the ambient request deadline and fault plan
/// apply to every job exactly as they do on `/execute`.
#[must_use]
pub fn batch_chunk_source(driver: BatchDriver, jobs: Vec<BatchJob>) -> ChunkSource {
    let mut queue: VecDeque<BatchJob> = jobs.into();
    let mut index = 0;
    Box::new(move || {
        let Some(job) = queue.pop_front() else {
            return Ok(None);
        };
        let result = driver
            .run(&[job])
            .pop()
            .expect("one job in yields one result out");
        let line = batch_job_line(index, &result);
        index += 1;
        Ok(Some(line.into_bytes()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn pipeline_accepts_benchmark_or_source() {
        let by_name = parse(r#"{"benchmark":"j2d5pt"}"#).unwrap();
        assert_eq!(pipeline_from(&by_name).unwrap().def().name(), "j2d5pt");

        let source = an5d::An5d::benchmark("star2d1r").unwrap().c_source();
        let body = Json::obj(vec![
            ("source", Json::str(&source)),
            ("name", Json::str("star2d1r")),
        ]);
        assert_eq!(pipeline_from(&body).unwrap().def().radius(), 1);

        assert!(pipeline_from(&parse("{}").unwrap()).is_err());
        assert!(pipeline_from(&parse(r#"{"benchmark":"nope"}"#).unwrap()).is_err());
    }

    #[test]
    fn config_extraction_round_trips() {
        let body =
            parse(r#"{"config":{"bt":4,"bs":[128],"hsn":256,"precision":"single"}}"#).unwrap();
        let config = config_from(&body).unwrap();
        assert_eq!(config.bt(), 4);
        assert_eq!(config.bs(), &[128]);
        assert_eq!(config.hsn(), Some(256));
        assert_eq!(
            config_json(&config).render(),
            r#"{"bt":4,"bs":[128],"hsn":256,"precision":"single"}"#
        );

        let no_hsn = parse(r#"{"config":{"bt":1,"bs":[32],"precision":"double"}}"#).unwrap();
        assert_eq!(config_from(&no_hsn).unwrap().hsn(), None);

        let bad = parse(r#"{"config":{"bt":0,"bs":[32],"precision":"double"}}"#).unwrap();
        assert!(config_from(&bad).is_err());
    }

    #[test]
    fn device_and_space_defaults() {
        let registry = DeviceRegistry::standard();
        let empty = parse("{}").unwrap();
        assert_eq!(
            device_from(&empty, &registry).unwrap(),
            None,
            "no device → router decides"
        );
        for (spelling, id) in [
            ("p100", "p100"),
            ("Tesla_V100", "v100"),
            ("A100", "a100"),
            ("small", "small"),
        ] {
            let body = Json::obj(vec![("device", Json::str(spelling))]);
            assert_eq!(
                device_from(&body, &registry).unwrap(),
                Some(DeviceId::new(id))
            );
        }
        // Unknown names are rejected with the registry-generated set: the
        // message tracks registered profiles instead of a hardcoded pair.
        let err = device_from(&parse(r#"{"device":"h100"}"#).unwrap(), &registry).unwrap_err();
        assert_eq!(
            err.message,
            format!("\"device\" must be one of {}", registry.accepted_names())
        );
        assert!(
            err.message.contains("\"a100\"") && err.message.contains("\"v100\""),
            "{err}"
        );
        assert!(device_from(&parse(r#"{"device":7}"#).unwrap(), &registry).is_err());

        let space = space_from(&empty, 2, Precision::Single).unwrap();
        assert!(!space.is_empty());
        assert!(space_from(&parse(r#"{"space":"huge"}"#).unwrap(), 2, Precision::Single).is_err());
    }

    #[test]
    fn devices_response_lists_the_fleet_in_id_order() {
        let registry = DeviceRegistry::standard();
        let rendered = devices_response(&registry).render();
        assert!(rendered.starts_with(r#"{"default":"v100""#), "{rendered}");
        let listing = &rendered[rendered.find("\"devices\"").unwrap()..];
        let positions: Vec<usize> = ["\"a100\"", "\"p100\"", "\"small\"", "\"v100\""]
            .iter()
            .map(|id| listing.find(id).unwrap_or_else(|| panic!("{id} missing")))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "{rendered}");
        assert_eq!(
            devices_response(&registry).render(),
            rendered,
            "deterministic"
        );
    }

    #[test]
    fn pool_stats_render() {
        let stats = PoolStats {
            workers: 4,
            queued_batches: 1,
            items_executed: 10,
            batches_executed: 2,
            total_batch_micros: 300,
            max_batch_micros: 200,
        };
        assert_eq!(
            pool_stats_json(&stats).render(),
            r#"{"workers":4,"queued_batches":1,"items_executed":10,"batches_executed":2,"mean_batch_us":150,"max_batch_us":200}"#
        );
    }

    #[test]
    fn responses_render_deterministically() {
        let pipeline = An5d::benchmark("j2d5pt").unwrap();
        let problem = pipeline.problem(&[64, 64], 8).unwrap();
        let config = BlockConfig::new(2, &[32], None, Precision::Double).unwrap();
        let plan = pipeline.plan(&problem, &config).unwrap();
        let a = plan_response(&plan).render();
        let b = plan_response(&plan).render();
        assert_eq!(a, b);
        assert!(a.contains("\"nthr\""));

        let device = GpuDevice::tesla_v100();
        let prediction = pipeline.predict(&problem, &config, &device).unwrap();
        assert_eq!(
            predict_response(&prediction).render(),
            predict_response(&prediction).render()
        );
    }

    #[test]
    fn error_body_is_json() {
        assert_eq!(error_body("boom \"x\""), r#"{"error":"boom \"x\""}"#);
    }
}
