//! The reactor half of the server: one thread that owns every
//! connection and never blocks on any of them.
//!
//! The pre-reactor server handed each accepted connection to a pooled
//! worker for its whole lifetime, so `workers` — not the hardware —
//! bounded concurrent clients. The reactor inverts that: connections
//! live here as nonblocking sockets in an [`an5d_net::Poller`], and a
//! worker is involved only between "a complete request is parsed" and
//! "the response bytes are handed back" (see `server.rs` for the
//! dispatch half). The same shape as AN5D's temporal blocking: the
//! scarce resource (a worker thread / a register) is held exactly while
//! useful work happens, and an idle keep-alive connection costs one
//! `pollfd` entry plus one timer-wheel slot — which is what makes 10k
//! parked connections with 4 workers a non-event.
//!
//! Per-connection lifecycle:
//!
//! ```text
//!            accept                    bytes          complete request
//!   listener ──────▶ Reading (first) ───────▶ Reading ───────────────▶ InFlight
//!                       ▲                        ▲                        │
//!                       │ first bytes            │                response│bytes
//!                       │                        │ partial next           ▼
//!                    Parked ◀──────────────── written ◀──────────── Writing
//!                       keep-alive, no buffered bytes
//! ```
//!
//! * **Parked** — idle between requests; read interest, keep-alive
//!   deadline on the timer wheel. The cheap majority under C10K load.
//! * **Reading** — partial request buffered in the [`RequestParser`];
//!   read interest, I/O deadline.
//! * **InFlight** — request dispatched to a worker; **no** poll interest
//!   at all, so a client pipelining ahead is backpressured by TCP
//!   rather than by server memory. No deadline (the worker owns the
//!   clock); the connection's timer generation is bumped so a stale
//!   deadline firing late is ignored.
//! * **Writing** — response bytes draining; write interest, I/O
//!   deadline. `close_after_write` carries the `Connection: close` /
//!   request-bound / error / 503 decision. Bytes live in a queue of
//!   segments drained front to back (scatter/gather): a buffered
//!   response is one segment, a streamed one starts with its chunked
//!   head and refills from the worker's `ResponseStream` as chunks are
//!   produced — blocked on the *producer* the connection holds no
//!   write interest and no I/O deadline, blocked on the *socket* it
//!   waits for `POLLOUT` under the usual budget.
//!
//! Closes distinguish *clean* ends (EOF while parked between requests,
//! idle timeout, shutdown) from *aborted* ones (EOF, transport error,
//! or deadline while a request head or body was partially buffered —
//! `RequestParser::is_clean` is the oracle), feeding the
//! `an5d_connections_aborted` counter.

use crate::api;
use crate::http::{Parse, Request, RequestParser, Response};
use crate::server::{
    render_response, CompletionBody, DispatchItem, ResponseStream, Shared, StreamStatus, IO_TIMEOUT,
};
use an5d_net::{fd_of_listener, fd_of_stream, Event, Interest, Poller, TimerWheel, WakeReceiver};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Poll token of the listener.
const LISTENER: usize = 0;
/// Poll token of the wake channel.
const WAKE: usize = 1;
/// First token handed to a connection; tokens are never reused, so a
/// stale timer or completion can never alias a new connection.
const FIRST_CONN_TOKEN: usize = 2;

/// Read syscall chunk size.
const READ_CHUNK: usize = 16 * 1024;
/// Most bytes drained from one connection per loop iteration; a bulk
/// sender yields to its neighbours and the level-triggered poll picks
/// the remainder up next iteration.
const READ_BURST: usize = 256 * 1024;

/// Timer wheel slot width. Keep-alive and I/O deadlines fire up to one
/// granule late — noise against the multi-second budgets involved.
const TIMER_GRANULARITY: Duration = Duration::from_millis(10);
/// Timer wheel slot count (horizon ≈ 10 s; later deadlines lap).
const TIMER_SLOTS: usize = 1024;
/// Upper bound on one poll wait: a safety heartbeat so a lost wake can
/// stall the loop by at most this much.
const MAX_POLL_WAIT: Duration = Duration::from_millis(500);

/// What the reactor is doing with a connection right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Idle between requests (keep-alive deadline armed).
    Parked,
    /// Awaiting the first request, or holding a partial one.
    Reading,
    /// Request handed to a worker; no poll interest.
    InFlight,
    /// Response bytes draining to the socket.
    Writing,
}

/// Everything the reactor holds per connection.
struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    /// Pending response segments (write-backpressure buffer), drained
    /// front to back under `POLLOUT` — scatter/gather style, so a
    /// streamed body never gets copied into one contiguous buffer.
    out: VecDeque<Vec<u8>>,
    /// Bytes of the *front* segment already written.
    out_pos: usize,
    /// Live body producer for a streamed response: when `out` runs dry
    /// the reactor pulls freshly produced segments from here instead of
    /// finishing the response.
    body_stream: Option<Arc<ResponseStream>>,
    /// Requests served on this connection.
    served: usize,
    state: ConnState,
    close_after_write: bool,
    /// Timer generation: bumped on every deadline (re)arm or disarm, so
    /// a previously scheduled wheel entry firing late is ignored.
    gen: u64,
}

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    /// `Some` until shutdown stops accepting.
    listener: Option<TcpListener>,
    receiver: WakeReceiver,
    poller: Poller,
    wheel: TimerWheel,
    conns: BTreeMap<usize, Conn>,
    /// Tokens with a live [`ResponseStream`]: visited after every wake
    /// so newly produced segments reach their sockets without waiting
    /// for a poll event (stale tokens are dropped lazily).
    streaming: BTreeSet<usize>,
    next_token: usize,
    expired_scratch: Vec<(usize, u64)>,
}

impl Reactor {
    /// Wire the listener and wake channel into a fresh poller.
    ///
    /// # Errors
    ///
    /// Propagates the failure to make the listener nonblocking.
    pub(crate) fn new(
        listener: TcpListener,
        shared: Arc<Shared>,
        receiver: WakeReceiver,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new();
        poller.register(LISTENER, fd_of_listener(&listener), Interest::READABLE);
        poller.register(WAKE, receiver.fd(), Interest::READABLE);
        Ok(Self {
            shared,
            listener: Some(listener),
            receiver,
            poller,
            wheel: TimerWheel::new(TIMER_GRANULARITY, TIMER_SLOTS, Instant::now()),
            conns: BTreeMap::new(),
            streaming: BTreeSet::new(),
            next_token: FIRST_CONN_TOKEN,
            expired_scratch: Vec::new(),
        })
    }

    /// The reactor thread body: poll → wakes → completions → accept →
    /// socket events → timers, until shutdown has drained every
    /// connection.
    pub(crate) fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                self.sweep_for_shutdown();
                if self.conns.is_empty() {
                    break;
                }
            }
            let now = Instant::now();
            let timeout = self
                .wheel
                .next_timeout(now)
                .map_or(MAX_POLL_WAIT, |hint| hint.min(MAX_POLL_WAIT));
            if self.poller.poll(Some(timeout), &mut events).is_err() {
                // Unrecoverable poll failure: back off instead of
                // spinning; the heartbeat keeps shutdown responsive.
                std::thread::sleep(TIMER_GRANULARITY);
                continue;
            }
            let busy_start = Instant::now();
            self.receiver.drain();
            // Completions first: handing finished responses to their
            // sockets is what frees workers for the dispatch queue.
            self.apply_completions();
            // Then streaming connections: a worker woke us after pushing
            // fresh body segments; move them toward their sockets.
            self.pump_streams();
            for event in events.iter().copied() {
                match event.token {
                    LISTENER => self.do_accept(),
                    WAKE => {}
                    token => self.on_socket_event(token, event),
                }
            }
            self.fire_timers();
            self.shared
                .state
                .metrics()
                .connections()
                .record_loop(busy_start.elapsed());
        }
    }

    fn stats(&self) -> &crate::metrics::ConnectionStats {
        self.shared.state.metrics().connections()
    }

    /// Arm (or re-arm) the connection's single deadline.
    fn arm(&mut self, token: usize, budget: Duration) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.gen += 1;
            let gen = conn.gen;
            self.wheel.schedule(token, gen, Instant::now() + budget);
        }
    }

    /// Invalidate any armed deadline (lazy cancellation).
    fn disarm(&mut self, token: usize) {
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.gen += 1;
        }
    }

    /// Decrement the parked gauge when leaving the parked state.
    fn leave_parked(&mut self, token: usize) {
        if let Some(conn) = self.conns.get(&token) {
            if conn.state == ConnState::Parked {
                self.stats().on_unparked();
            }
        }
    }

    /// Close and forget a connection. `aborted` marks a mid-request (or
    /// mid-response) death for the `an5d_connections_aborted` counter.
    fn close(&mut self, token: usize, aborted: bool) {
        self.streaming.remove(&token);
        if let Some(conn) = self.conns.remove(&token) {
            if let Some(stream) = &conn.body_stream {
                // Unblock and stop the producing worker.
                stream.close();
            }
            self.poller.deregister(token);
            if conn.state == ConnState::Parked {
                self.stats().on_unparked();
            }
            self.stats().on_closed(aborted);
        }
    }

    /// Accept every connection the backlog holds right now.
    fn do_accept(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue; // dropped: cannot safely poll it
                    }
                    // Disable Nagle: buffered responses go out as one
                    // segment, and a streamed chunk must hit the wire
                    // when produced instead of waiting on a delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    self.poller
                        .register(token, fd_of_stream(&stream), Interest::READABLE);
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            parser: RequestParser::new(),
                            out: VecDeque::new(),
                            out_pos: 0,
                            body_stream: None,
                            served: 0,
                            state: ConnState::Reading,
                            close_after_write: false,
                            gen: 0,
                        },
                    );
                    self.stats().on_accepted();
                    // The first request gets the full I/O budget, as the
                    // pre-reactor server gave it.
                    self.arm(token, IO_TIMEOUT);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE): yield so a
                    // persistent error cannot become a hot loop.
                    std::thread::sleep(Duration::from_millis(5));
                    return;
                }
            }
        }
    }

    fn on_socket_event(&mut self, token: usize, event: Event) {
        let Some(conn) = self.conns.get(&token) else {
            return; // closed earlier this iteration
        };
        match conn.state {
            ConnState::Parked | ConnState::Reading if event.readable => self.do_read(token),
            ConnState::Writing => self.try_flush(token),
            _ => {}
        }
    }

    /// Drain readable bytes into the parser, then advance it.
    fn do_read(&mut self, token: usize) {
        match an5d_fault::point("reactor.read") {
            None => {}
            Some(an5d_fault::FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(_) => {
                // Injected transport kill. Always an abort (regardless of
                // parser state) so a chaos soak can reconcile
                // `an5d_connections_aborted` against the fault journal.
                self.close(token, true);
                return;
            }
        }
        let mut peer_gone = false;
        let mut chunk = [0u8; READ_CHUNK];
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let mut total = 0;
            loop {
                match (&conn.stream).read(&mut chunk) {
                    Ok(0) => {
                        peer_gone = true;
                        break;
                    }
                    Ok(n) => {
                        conn.parser.feed(&chunk[..n]);
                        total += n;
                        if total >= READ_BURST {
                            break; // fairness: poll re-reports the rest
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        peer_gone = true;
                        break;
                    }
                }
            }
        }
        self.advance_parser(token, peer_gone);
    }

    /// Pull at most one request out of the parser and act on it.
    /// Pipelined successors stay buffered until this one's response is
    /// written — requests on one connection are served in order.
    fn advance_parser(&mut self, token: usize, peer_gone: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.parser.parse() {
            Parse::Ready(request) => self.dispatch_request(token, request),
            Parse::Failed(err) => {
                // Framing errors poison the stream position; answer and
                // close rather than guess where the next request starts.
                let body = render_response(
                    &mut Response::new(err.status, api::error_body(&err.message)),
                    false,
                );
                self.start_write(token, body, true);
            }
            Parse::NeedMore => {
                if peer_gone {
                    // Clean EOF between requests is normal keep-alive
                    // teardown; EOF mid-request is an abort.
                    let aborted = !self.conns[&token].parser.is_clean();
                    self.close(token, aborted);
                } else if self.conns[&token].parser.is_clean() {
                    self.park(token);
                } else {
                    // Mid-request (partial line buffered, or headers
                    // done and body bytes outstanding): keep Reading
                    // under the per-request I/O budget, not the
                    // keep-alive idle timeout, and don't count it in
                    // the parked gauge.
                    self.resume_reading(token);
                }
            }
        }
    }

    /// Idle between requests: cheap to hold, reaped after the keep-alive
    /// budget.
    fn park(&mut self, token: usize) {
        self.leave_parked(token);
        let keep_alive_timeout = self.shared.keep_alive_timeout;
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.state = ConnState::Parked;
            self.poller.set_interest(token, Interest::READABLE);
            self.stats().on_parked();
            self.arm(token, keep_alive_timeout);
        }
    }

    /// A request is (still) arriving: full I/O budget per read, exactly
    /// like the pre-reactor per-read socket timeout.
    fn resume_reading(&mut self, token: usize) {
        self.leave_parked(token);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.state = ConnState::Reading;
            self.poller.set_interest(token, Interest::READABLE);
            self.arm(token, IO_TIMEOUT);
        }
    }

    /// Hand a parsed request to the dispatch queue — or shed it with a
    /// 503 when the queue is at depth (admission control now sheds
    /// *requests*, not connections: parked idle connections are nearly
    /// free, so the bounded resource worth guarding is worker time).
    fn dispatch_request(&mut self, token: usize, request: Request) {
        // A request whose deadline already expired — it burned its whole
        // budget queued in the kernel or mid-parse — is shed here so it
        // never occupies a worker: 503 + Retry-After instead of a 504
        // from a worker that could do no useful work.
        if request.deadline.is_some_and(|d| d.expired()) {
            self.shared.state.metrics().record_deadline_shed();
            let body = render_response(
                &mut Response::new(503, api::error_body("deadline expired before dispatch"))
                    .with_retry_after(1),
                false,
            );
            self.start_write(token, body, true);
            return;
        }
        let depth = self
            .shared
            .queue
            .lock()
            .expect("dispatch queue poisoned")
            .len();
        if depth >= self.shared.queue_depth {
            self.shared.state.metrics().record_rejected();
            let body = render_response(
                &mut Response::new(503, api::error_body("server overloaded, retry later"))
                    .with_retry_after(1),
                false,
            );
            self.start_write(token, body, true);
            return;
        }
        self.leave_parked(token);
        let served = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            conn.state = ConnState::InFlight;
            conn.served += 1;
            conn.served
        };
        if served > 1 {
            self.shared.reused_requests.fetch_add(1, Ordering::Relaxed);
        }
        // No poll interest while a worker owns the request: a client
        // pipelining ahead is backpressured by TCP, not server memory.
        self.poller.set_interest(token, Interest::NONE);
        self.disarm(token);
        let mut queue = self.shared.queue.lock().expect("dispatch queue poisoned");
        queue.push_back(DispatchItem {
            token,
            request,
            served,
        });
        drop(queue);
        self.shared.available.notify_one();
    }

    /// Take ownership of fully-rendered response bytes and start
    /// draining them as a single segment.
    fn start_write(&mut self, token: usize, bytes: Vec<u8>, close_after: bool) {
        self.leave_parked(token);
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.state = ConnState::Writing;
            conn.out.clear();
            conn.out.push_back(bytes);
            conn.out_pos = 0;
            conn.body_stream = None;
            conn.close_after_write = close_after;
            self.poller.set_interest(token, Interest::WRITABLE);
            self.arm(token, IO_TIMEOUT);
            // Optimistic first write: the send buffer is almost always
            // open, so most responses never wait for a poll round.
            self.try_flush(token);
        }
    }

    /// Start a streamed response: the chunked head drains now, body
    /// segments follow from `stream` as the worker produces them.
    fn start_stream(
        &mut self,
        token: usize,
        head: Vec<u8>,
        stream: Arc<ResponseStream>,
        close_after: bool,
    ) {
        self.leave_parked(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            stream.close(); // connection died first; stop the producer
            return;
        };
        conn.state = ConnState::Writing;
        conn.out.clear();
        conn.out.push_back(head);
        conn.out_pos = 0;
        conn.body_stream = Some(stream);
        conn.close_after_write = close_after;
        self.streaming.insert(token);
        self.poller.set_interest(token, Interest::WRITABLE);
        self.arm(token, IO_TIMEOUT);
        self.try_flush(token);
    }

    fn try_flush(&mut self, token: usize) {
        let mut failed = false;
        let mut done = false;
        // Streaming only: ran out of segments while the producer is
        // still running — nothing to write until the next worker wake.
        let mut waiting = false;
        // Injected write faults: a kill aborts the connection mid-
        // response; a short write caps the bytes this call may drain
        // (the level-triggered poll resumes the rest), exercising the
        // resumable-write path deterministically.
        let mut budget = usize::MAX;
        match an5d_fault::point("reactor.write") {
            None => {}
            Some(an5d_fault::FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(an5d_fault::FaultAction::Error) => failed = true,
            Some(an5d_fault::FaultAction::Short(n)) => budget = n.max(1),
        }
        if !failed {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                // Drop the front segment once fully written.
                if conn
                    .out
                    .front()
                    .is_some_and(|front| front.len() == conn.out_pos)
                {
                    conn.out.pop_front();
                    conn.out_pos = 0;
                    continue;
                }
                if conn.out.is_empty() {
                    // Queue dry: a buffered response is done; a streamed
                    // one pulls whatever the producer has pushed since.
                    let Some(stream) = &conn.body_stream else {
                        done = true;
                        break;
                    };
                    let (segments, status) = Arc::clone(stream).drain();
                    match status {
                        StreamStatus::Failed => {
                            failed = true;
                            break;
                        }
                        StreamStatus::Done => {
                            conn.body_stream = None;
                            if segments.is_empty() {
                                done = true;
                                break;
                            }
                        }
                        StreamStatus::Open => {
                            if segments.is_empty() {
                                waiting = true;
                                break;
                            }
                        }
                    }
                    conn.out.extend(segments);
                    continue;
                }
                if budget == 0 {
                    break; // short-write cap hit; poll picks it back up
                }
                let front = &conn.out[0];
                let limit = front.len().min(conn.out_pos.saturating_add(budget));
                match (&conn.stream).write(&front[conn.out_pos..limit]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        budget = budget.saturating_sub(n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
        }
        if failed {
            // Any failure mid-response — transport error, injected kill,
            // or a chunk source dying — is an abort: the client holds a
            // truncated response, and on a kept-alive connection a
            // half-written chunked body would desync every pipelined
            // successor, so the connection must go down with it.
            self.close(token, true);
        } else if done {
            self.on_response_written(token);
        } else if waiting {
            // Blocked on the producer, not the socket: no write interest
            // (a level-triggered POLLOUT on an open send buffer would
            // spin) and no I/O deadline — there is no pending I/O. The
            // worker's wake re-enters via `pump_streams`.
            self.poller.set_interest(token, Interest::NONE);
            self.disarm(token);
        } else {
            // Blocked on the socket: wait for POLLOUT under a fresh I/O
            // budget (re-armed so a slowly-draining client is judged per
            // write step, not per response).
            self.poller.set_interest(token, Interest::WRITABLE);
            self.arm(token, IO_TIMEOUT);
        }
    }

    /// The response is fully on the wire: close, or look for the next
    /// request (which may already be buffered, pipelined).
    fn on_response_written(&mut self, token: usize) {
        self.streaming.remove(&token);
        let close =
            self.conns[&token].close_after_write || self.shared.shutdown.load(Ordering::Acquire);
        if close {
            self.close(token, false);
            return;
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            conn.out.clear();
            conn.out_pos = 0;
            conn.body_stream = None;
        }
        self.advance_parser(token, false);
    }

    /// Hand each finished (or starting-to-stream) response back to its
    /// connection.
    fn apply_completions(&mut self) {
        let completed = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .expect("completion queue poisoned"),
        );
        for completion in completed {
            if !self.conns.contains_key(&completion.token) {
                if let CompletionBody::Stream { stream, .. } = &completion.body {
                    stream.close(); // connection already gone: stop the producer
                }
                continue;
            }
            match completion.body {
                CompletionBody::Full(bytes) => {
                    self.start_write(completion.token, bytes, !completion.keep_alive);
                }
                CompletionBody::Stream { head, stream } => {
                    self.start_stream(completion.token, head, stream, !completion.keep_alive);
                }
            }
        }
    }

    /// Move freshly produced segments of every live streamed response
    /// toward their sockets; stale tokens fall out of the set here.
    fn pump_streams(&mut self) {
        let tokens: Vec<usize> = self.streaming.iter().copied().collect();
        for token in tokens {
            let live = self
                .conns
                .get(&token)
                .is_some_and(|conn| conn.state == ConnState::Writing);
            if live {
                self.try_flush(token);
            } else {
                self.streaming.remove(&token);
            }
        }
    }

    /// Fire expired deadlines; stale generations are ignored.
    fn fire_timers(&mut self) {
        let mut due = std::mem::take(&mut self.expired_scratch);
        due.clear();
        self.wheel.expired(Instant::now(), &mut due);
        for &(token, gen) in &due {
            let Some(conn) = self.conns.get(&token) else {
                continue;
            };
            if conn.gen != gen {
                continue; // re-armed or in flight since scheduling
            }
            // Keep-alive expiry on a parked connection is a clean reap;
            // a deadline mid-request or mid-response (a response still
            // draining — buffered or streamed — when the I/O budget ran
            // out) is an abort.
            let aborted = !conn.parser.is_clean() || conn.state == ConnState::Writing;
            self.close(token, aborted);
        }
        self.expired_scratch = due;
    }

    /// On shutdown: stop accepting, drop every idle connection, and let
    /// in-flight requests and draining responses finish — every admitted
    /// request is answered.
    fn sweep_for_shutdown(&mut self) {
        if self.listener.take().is_some() {
            self.poller.deregister(LISTENER);
        }
        let idle: Vec<usize> = self
            .conns
            .iter()
            .filter(|(_, conn)| matches!(conn.state, ConnState::Parked | ConnState::Reading))
            .map(|(&token, _)| token)
            .collect();
        for token in idle {
            // Server-initiated: never counted as a peer abort.
            self.close(token, false);
        }
    }
}
