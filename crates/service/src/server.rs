//! The `an5d-serve` server: TCP accept loop, bounded connection queue
//! with admission control, a fixed worker pool, persistent (keep-alive)
//! connections and graceful shutdown.
//!
//! Concurrency model (all std, no external runtime):
//!
//! * the **accept thread** owns the `TcpListener`. Each accepted
//!   connection is pushed onto a bounded queue; when the queue is full
//!   the connection is answered `503` immediately (admission control —
//!   overload sheds load instead of growing an unbounded backlog);
//! * **worker threads** pop connections and serve **multiple requests
//!   per connection**: requests are read and dispatched through
//!   [`crate::handlers::dispatch`] until the client sends
//!   `Connection: close`, the keep-alive idle timeout expires, or the
//!   per-connection request bound is reached (so one chatty client
//!   cannot monopolise a worker forever);
//! * **graceful shutdown** — `POST /shutdown` (or [`Server::stop`]) sets
//!   the shutdown flag, wakes the accept thread with a loopback
//!   connection and wakes all workers; workers drain the queue before
//!   exiting (closing each connection after its in-flight request), so
//!   every admitted request is answered.

use crate::handlers::{dispatch, ServiceState};
use crate::http::{read_request, write_response, Response};
use crate::{api, json::Json};
use an5d::{backend_from_env, ExecutionBackend};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Socket read timeout for the *first* request of a connection, and the
/// write timeout throughout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Connection worker threads.
    pub workers: usize,
    /// Bounded queue depth; connections beyond it are answered 503.
    pub queue_depth: usize,
    /// Per-device plan-cache shard capacity (each registered device gets
    /// its own shard of this size).
    pub cache_capacity: usize,
    /// How long a persistent connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_timeout: Duration,
    /// Maximum requests served on one connection before the server
    /// closes it (bounds worker monopolisation by a single client).
    pub max_requests_per_connection: usize,
    /// Path of the persisted tuning database: `/tune` reads through it,
    /// fresh results are appended, and every device shard warms its
    /// caches from it at startup. `None` (the default) disables
    /// persistence. The `an5d-serve` binary resolves the `AN5D_TUNE_DB`
    /// environment variable into this field; the library default stays
    /// `None` so embedders and tests never pick up a DB implicitly.
    pub tune_db: Option<String>,
    /// Requests slower than this are logged to stderr with their trace
    /// id (see `GET /trace?id=`).
    pub slow_request_threshold: Duration,
    /// Completed request traces retained for `GET /trace`.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7845".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            keep_alive_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            tune_db: None,
            slow_request_threshold: crate::handlers::DEFAULT_SLOW_THRESHOLD,
            trace_capacity: crate::handlers::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// A connection waiting for (or returning to) a worker, with the
/// serving state that must survive fairness re-queueing.
struct QueuedConn {
    stream: TcpStream,
    /// Requests already served on this connection.
    served: usize,
    /// Absolute idle deadline for the next request (`None` until the
    /// connection first waits).
    deadline: Option<std::time::Instant>,
}

struct Shared {
    state: ServiceState,
    queue: Mutex<VecDeque<QueuedConn>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_depth: usize,
    keep_alive_timeout: Duration,
    max_requests_per_connection: usize,
    /// Requests served on a connection that had already served at least
    /// one (i.e. saved TCP connection setups).
    reused_requests: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    /// Admit a connection or shed it with a 503.
    fn admit(&self, stream: TcpStream) {
        let mut queue = self.queue.lock().expect("connection queue poisoned");
        if queue.len() >= self.queue_depth {
            drop(queue);
            self.state.metrics().record_rejected();
            let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                &Response::new(503, api::error_body("server overloaded, retry later")),
                false,
            );
            return;
        }
        queue.push_back(QueuedConn {
            stream,
            served: 0,
            deadline: None,
        });
        drop(queue);
        self.available.notify_one();
    }

    /// Return an established (already admitted) connection to the back
    /// of the queue. Bypasses the admission bound on purpose: requeued
    /// connections are already inside the system, and their number is
    /// bounded by the worker count.
    fn requeue(&self, conn: QueuedConn) {
        let mut queue = self.queue.lock().expect("connection queue poisoned");
        queue.push_back(conn);
        drop(queue);
        self.available.notify_one();
    }

    /// Pop the next connection; `None` once shut down and drained.
    fn pop(&self) -> Option<QueuedConn> {
        let mut queue = self.queue.lock().expect("connection queue poisoned");
        loop {
            if let Some(conn) = queue.pop_front() {
                return Some(conn);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .expect("connection queue poisoned");
        }
    }

    /// Flip the shutdown flag and wake the accept thread and all workers.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return; // already shutting down
        }
        // Notify while holding the queue mutex: a worker that has just
        // read `shutdown == false` under the lock is then either still
        // holding it (we wait; it parks; our notify wakes it) or already
        // parked in `wait` — without the lock the notification could
        // slip into the gap and be lost, leaving that worker (and
        // `Server::stop`) asleep forever.
        let guard = self.queue.lock().expect("connection queue poisoned");
        self.available.notify_all();
        drop(guard);
        // Wake the accept thread out of its blocking accept(); the
        // connection itself is discarded by the flag check.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running `an5d-serve` instance.
///
/// Dropping a `Server` without calling [`Server::stop`] or
/// [`Server::wait`] detaches the threads (the process keeps serving
/// until exit); tests and the binary always join explicitly.
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("workers", &self.worker_handles.len())
            .finish()
    }
}

impl Server {
    /// Bind and start serving with the process-default backend
    /// (`AN5D_BACKEND`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: &ServerConfig) -> io::Result<Server> {
        Self::start_with_backend(config, backend_from_env())
    }

    /// Bind and start serving on an explicit execution backend.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, and tune-DB open failures when
    /// [`ServerConfig::tune_db`] names a file that exists but is not a
    /// tune DB — starting *without* the operator's requested persistence
    /// (silently re-tuning everything) would be worse than not starting.
    pub fn start_with_backend(
        config: &ServerConfig,
        backend: Arc<dyn ExecutionBackend>,
    ) -> io::Result<Server> {
        let mut state = ServiceState::new(backend, config.cache_capacity.max(1))
            .with_slow_threshold(config.slow_request_threshold)
            .with_trace_capacity(config.trace_capacity);
        if let Some(path) = &config.tune_db {
            state = state.with_tune_db(Arc::new(an5d::TuneDb::open(path)?));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth: config.queue_depth.max(1),
            keep_alive_timeout: config.keep_alive_timeout.max(Duration::from_millis(1)),
            max_requests_per_connection: config.max_requests_per_connection.max(1),
            reused_requests: AtomicU64::new(0),
            addr,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("an5d-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let worker_shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("an5d-serve-worker-{index}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared service state (cache statistics, metrics).
    #[must_use]
    pub fn state(&self) -> &ServiceState {
        &self.shared.state
    }

    /// Requests served over an already-used (kept-alive) connection —
    /// each one is a TCP connection setup the client did not pay.
    #[must_use]
    pub fn reused_requests(&self) -> u64 {
        self.shared.reused_requests.load(Ordering::Relaxed)
    }

    /// Request graceful shutdown and join every thread. Queued requests
    /// are answered before workers exit.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn stop(mut self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Block until the server shuts down (via `POST /shutdown` or another
    /// thread calling [`Server::stop`]) and join every thread.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("accept thread panicked");
        }
        for handle in self.worker_handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                shared.admit(stream);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept failure (e.g. EMFILE): keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(conn) = shared.pop() {
        handle_connection(shared, conn);
    }
}

/// Granularity of the shutdown-flag / fairness poll while a worker waits
/// for the next request on an idle connection: the worst-case extra
/// shutdown latency contributed by a parked worker, and the longest a
/// queued connection waits behind an idle one.
const SHUTDOWN_POLL: Duration = Duration::from_millis(100);

/// Outcome of waiting for the next request on a connection.
enum Wait {
    /// Request bytes are available (or already buffered).
    Ready,
    /// Close the connection: peer hung up, idle deadline passed, a
    /// transport error occurred, or the server is shutting down.
    Close,
    /// Other connections are queued and this one is idle: hand the
    /// worker back by re-queueing the connection (round-robin fairness).
    Requeue,
}

/// Wait until the next request's first byte is available (or already
/// buffered), the absolute `deadline` passes, the peer hangs up, or the
/// server begins shutting down. Polls in [`SHUTDOWN_POLL`] slices so an
/// idle kept-alive connection can neither park its worker past shutdown
/// nor starve connections waiting in the queue.
fn wait_for_request(
    shared: &Shared,
    reader: &BufReader<TcpStream>,
    deadline: std::time::Instant,
) -> Wait {
    if !reader.buffer().is_empty() {
        return Wait::Ready; // a pipelined request is already buffered
    }
    let mut probe = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Wait::Close;
        }
        let now = std::time::Instant::now();
        let Some(remaining) = deadline
            .checked_duration_since(now)
            .filter(|r| !r.is_zero())
        else {
            return Wait::Close; // idle deadline passed
        };
        let slice = SHUTDOWN_POLL.min(remaining);
        let _ = reader.get_ref().set_read_timeout(Some(slice));
        match reader.get_ref().peek(&mut probe) {
            Ok(0) => return Wait::Close, // peer closed
            Ok(_) => return Wait::Ready, // request bytes available
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Still idle: if admitted connections are waiting for a
                // worker, give this one's slot back rather than sitting
                // on it for the rest of the idle budget.
                if !shared
                    .queue
                    .lock()
                    .expect("connection queue poisoned")
                    .is_empty()
                {
                    return Wait::Requeue;
                }
            }
            Err(_) => return Wait::Close,
        }
    }
}

/// Serve requests off one connection until the client (or a server
/// policy) ends it: `Connection: close`, the keep-alive idle deadline,
/// the per-connection request bound, a transport error, or server
/// shutdown. Pipelined requests already buffered in the reader are
/// served before the connection waits on the socket again. An idle
/// connection is re-queued (with its `served` count and idle deadline
/// carried along) whenever other connections are waiting, so persistent
/// clients cannot pin every worker.
fn handle_connection(shared: &Shared, conn: QueuedConn) {
    let QueuedConn {
        stream,
        mut served,
        mut deadline,
    } = conn;
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    // Responses are written as one buffered segment each; disable Nagle
    // so a response never waits on the client's delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        // The first request gets the full I/O timeout; between requests
        // the shorter keep-alive idle timeout applies, so a silent
        // client releases this worker quickly. The deadline is absolute
        // and survives re-queueing, so requeue cycles never extend a
        // connection's idle budget.
        let limit = *deadline.get_or_insert_with(|| {
            let budget = if served == 0 {
                IO_TIMEOUT
            } else {
                shared.keep_alive_timeout
            };
            std::time::Instant::now() + budget
        });
        match wait_for_request(shared, &reader, limit) {
            Wait::Ready => {}
            Wait::Close => return,
            Wait::Requeue => {
                shared.requeue(QueuedConn {
                    stream: reader.into_inner(),
                    served,
                    deadline: Some(limit),
                });
                return;
            }
        }
        // The request has started arriving: give its remaining bytes the
        // full I/O timeout regardless of the idle budget.
        let _ = reader.get_ref().set_read_timeout(Some(IO_TIMEOUT));
        let request = match read_request(&mut reader) {
            Ok(Ok(request)) => request,
            Ok(Err(http_error)) => {
                // Framing errors poison the stream position; answer and
                // close rather than guess where the next request starts.
                let _ = write_response(
                    reader.get_mut(),
                    &Response::new(http_error.status, api::error_body(&http_error.message)),
                    false,
                );
                return;
            }
            // Transport failure: the peer closed (normal keep-alive
            // teardown), vanished, or idled past the deadline. No reply
            // is possible or useful.
            Err(_) => return,
        };
        served += 1;
        if served > 1 {
            shared.reused_requests.fetch_add(1, Ordering::Relaxed);
        }
        let response = dispatch(&shared.state, &request);
        let shutting_down =
            request.method == "POST" && request.path == "/shutdown" && response.status == 200;
        let keep_alive = request.keep_alive
            && !shutting_down
            && served < shared.max_requests_per_connection
            && !shared.shutdown.load(Ordering::Acquire);
        let written = write_response(reader.get_mut(), &response, keep_alive);
        if shutting_down {
            shared.begin_shutdown();
        }
        if !keep_alive || written.is_err() {
            return;
        }
        // A fresh idle period starts after each response.
        deadline = None;
        // Fairness: if other connections await a worker and nothing of
        // this connection's next request has arrived yet, rotate to the
        // back of the queue instead of monopolising the worker.
        if reader.buffer().is_empty()
            && !shared
                .queue
                .lock()
                .expect("connection queue poisoned")
                .is_empty()
        {
            shared.requeue(QueuedConn {
                stream: reader.into_inner(),
                served,
                deadline: Some(std::time::Instant::now() + shared.keep_alive_timeout),
            });
            return;
        }
    }
}

/// Render the one-line startup banner used by the binary (and asserted
/// by the CI smoke test).
#[must_use]
pub fn banner(
    addr: SocketAddr,
    backend: &str,
    workers: usize,
    queue_depth: usize,
    devices: usize,
    tune_db: Option<&str>,
) -> String {
    Json::obj(vec![
        ("listening", Json::Str(format!("http://{addr}"))),
        ("backend", Json::str(backend)),
        ("workers", Json::Int(workers as i128)),
        ("queue_depth", Json::Int(queue_depth as i128)),
        ("devices", Json::Int(devices as i128)),
        ("tune_db", tune_db.map_or(Json::Null, Json::str)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use an5d::SerialBackend;

    fn test_server_with(config: ServerConfig) -> Server {
        Server::start_with_backend(&config, Arc::new(SerialBackend)).expect("bind ephemeral port")
    }

    fn test_server(workers: usize, queue_depth: usize) -> Server {
        test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_depth,
            cache_capacity: 64,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn serves_stats_and_shuts_down_cleanly() {
        let server = test_server(2, 16);
        let addr = server.addr();
        let (status, body) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\""), "{body}");
        let (status, body) = client::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.wait();
    }

    #[test]
    fn stop_joins_without_outside_help() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let (status, _) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn bad_requests_get_error_responses_not_hangs() {
        let server = test_server(2, 16);
        let addr = server.addr();
        // Malformed request line.
        let (status, body) = client::raw(addr, "BOGUS\r\n\r\n").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
        // Unknown endpoint.
        let (status, _) = client::post(addr, "/nope", "{}").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn one_connection_serves_many_requests() {
        let server = test_server(2, 16);
        let addr = server.addr();
        let mut client = client::KeepAliveClient::new(addr);
        for round in 0..10 {
            let (status, body) = client.get("/stats").unwrap();
            assert_eq!(status, 200, "round {round}: {body}");
            assert!(body.contains("\"cache\""));
        }
        assert_eq!(
            client.reused(),
            9,
            "9 of 10 requests must reuse the connection"
        );
        assert_eq!(server.reused_requests(), 9);
        server.stop();
    }

    #[test]
    fn pipelined_requests_on_one_connection_are_all_answered() {
        use std::io::{Read, Write};
        let server = test_server(1, 8);
        let addr = server.addr();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Two back-to-back requests in one write; the second closes.
        stream
            .write_all(
                b"GET /stats HTTP/1.1\r\n\r\n\
                  GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert_eq!(
            raw.matches("HTTP/1.1 200 OK").count(),
            2,
            "both pipelined requests must be answered: {raw}"
        );
        assert!(raw.contains("Connection: keep-alive"));
        assert!(raw.contains("Connection: close"));
        server.stop();
    }

    #[test]
    fn request_bound_closes_the_connection_and_the_client_reconnects() {
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 64,
            max_requests_per_connection: 3,
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut client = client::KeepAliveClient::new(addr);
        for round in 0..10 {
            let (status, _) = client.get("/stats").unwrap();
            assert_eq!(status, 200, "round {round}");
        }
        // Connections are recycled every 3 requests, so fewer than 9
        // reuses — but the client kept going transparently.
        assert!(client.reused() < 9, "reused {}", client.reused());
        assert!(client.reused() >= 6, "reused {}", client.reused());
        server.stop();
    }

    #[test]
    fn idle_keep_alive_connections_are_reaped_quickly() {
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            cache_capacity: 64,
            keep_alive_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut client = client::KeepAliveClient::new(addr);
        let (status, _) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        // Sit idle past the server's keep-alive timeout; the server
        // drops the connection, freeing its only worker — a second
        // client must still get served...
        std::thread::sleep(Duration::from_millis(200));
        let (status, _) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200, "worker must not stay parked on idle conn");
        // ...and the idle client reconnects transparently.
        let (status, _) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn shutdown_is_not_delayed_by_idle_keep_alive_connections() {
        // A worker parked on an idle persistent connection must notice
        // shutdown within the SHUTDOWN_POLL slice, not after the whole
        // keep-alive timeout.
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            keep_alive_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut idle = client::KeepAliveClient::new(addr);
        let (status, _) = idle.get("/stats").unwrap();
        assert_eq!(status, 200);
        // The connection now sits idle, parking a worker in its wait.
        let started = std::time::Instant::now();
        server.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stop() took {:?} with an idle keep-alive connection",
            started.elapsed()
        );
    }

    #[test]
    fn keep_alive_connections_do_not_starve_queued_clients() {
        // More persistent clients than workers: with one worker, a
        // second keep-alive client must still be served promptly (the
        // idle first connection is requeued, not held for its whole
        // keep-alive budget).
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            cache_capacity: 64,
            keep_alive_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut first = client::KeepAliveClient::new(addr);
        let (status, _) = first.get("/stats").unwrap();
        assert_eq!(status, 200);
        // The first connection is now idle on the only worker.
        let mut second = client::KeepAliveClient::new(addr);
        let started = std::time::Instant::now();
        let (status, _) = second.get("/stats").unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "second client waited {:?} behind an idle keep-alive connection",
            started.elapsed()
        );
        // Both clients keep interleaving on the single worker.
        for _ in 0..5 {
            assert_eq!(first.get("/stats").unwrap().0, 200);
            assert_eq!(second.get("/stats").unwrap().0, 200);
        }
        server.stop();
    }

    #[test]
    fn explicit_connection_close_is_honoured() {
        let server = test_server(1, 8);
        let addr = server.addr();
        let (status, body) =
            client::raw(addr, "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\""));
        assert_eq!(server.reused_requests(), 0);
        server.stop();
    }
}
