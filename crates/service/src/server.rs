//! The `an5d-serve` server: TCP accept loop, bounded connection queue
//! with admission control, a fixed worker pool and graceful shutdown.
//!
//! Concurrency model (all std, no external runtime):
//!
//! * the **accept thread** owns the `TcpListener`. Each accepted
//!   connection is pushed onto a bounded queue; when the queue is full
//!   the connection is answered `503` immediately (admission control —
//!   overload sheds load instead of growing an unbounded backlog);
//! * **worker threads** pop connections, read one request, dispatch it
//!   through [`crate::handlers::dispatch`] and write one response
//!   (`Connection: close`);
//! * **graceful shutdown** — `POST /shutdown` (or [`Server::stop`]) sets
//!   the shutdown flag, wakes the accept thread with a loopback
//!   connection and wakes all workers; workers drain the queue before
//!   exiting, so every admitted request is answered.

use crate::handlers::{dispatch, ServiceState};
use crate::http::{read_request, write_response, Response};
use crate::{api, json::Json};
use an5d::{backend_from_env, ExecutionBackend};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-connection socket read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// Connection worker threads.
    pub workers: usize,
    /// Bounded queue depth; connections beyond it are answered 503.
    pub queue_depth: usize,
    /// Plan-cache capacity.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7845".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
        }
    }
}

struct Shared {
    state: ServiceState,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_depth: usize,
    addr: SocketAddr,
}

impl Shared {
    /// Admit a connection or shed it with a 503.
    fn admit(&self, stream: TcpStream) {
        let mut queue = self.queue.lock().expect("connection queue poisoned");
        if queue.len() >= self.queue_depth {
            drop(queue);
            self.state.metrics().record_rejected();
            let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                &Response::new(503, api::error_body("server overloaded, retry later")),
            );
            return;
        }
        queue.push_back(stream);
        drop(queue);
        self.available.notify_one();
    }

    /// Pop the next connection; `None` once shut down and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut queue = self.queue.lock().expect("connection queue poisoned");
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .expect("connection queue poisoned");
        }
    }

    /// Flip the shutdown flag and wake the accept thread and all workers.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return; // already shutting down
        }
        // Notify while holding the queue mutex: a worker that has just
        // read `shutdown == false` under the lock is then either still
        // holding it (we wait; it parks; our notify wakes it) or already
        // parked in `wait` — without the lock the notification could
        // slip into the gap and be lost, leaving that worker (and
        // `Server::stop`) asleep forever.
        let guard = self.queue.lock().expect("connection queue poisoned");
        self.available.notify_all();
        drop(guard);
        // Wake the accept thread out of its blocking accept(); the
        // connection itself is discarded by the flag check.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running `an5d-serve` instance.
///
/// Dropping a `Server` without calling [`Server::stop`] or
/// [`Server::wait`] detaches the threads (the process keeps serving
/// until exit); tests and the binary always join explicitly.
pub struct Server {
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("workers", &self.worker_handles.len())
            .finish()
    }
}

impl Server {
    /// Bind and start serving with the process-default backend
    /// (`AN5D_BACKEND`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: &ServerConfig) -> io::Result<Server> {
        Self::start_with_backend(config, backend_from_env())
    }

    /// Bind and start serving on an explicit execution backend.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start_with_backend(
        config: &ServerConfig,
        backend: Arc<dyn ExecutionBackend>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            state: ServiceState::new(backend, config.cache_capacity.max(1)),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_depth: config.queue_depth.max(1),
            addr,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("an5d-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))?;

        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let worker_shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("an5d-serve-worker-{index}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        Ok(Server {
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared service state (cache statistics, metrics).
    #[must_use]
    pub fn state(&self) -> &ServiceState {
        &self.shared.state
    }

    /// Request graceful shutdown and join every thread. Queued requests
    /// are answered before workers exit.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn stop(mut self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Block until the server shuts down (via `POST /shutdown` or another
    /// thread calling [`Server::stop`]) and join every thread.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            handle.join().expect("accept thread panicked");
        }
        for handle in self.worker_handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                shared.admit(stream);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept failure (e.g. EMFILE): keep serving.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(stream) = shared.pop() {
        handle_connection(shared, stream);
    }
}

fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(Ok(request)) => request,
        Ok(Err(http_error)) => {
            let mut stream = reader.into_inner();
            let _ = write_response(
                &mut stream,
                &Response::new(http_error.status, api::error_body(&http_error.message)),
            );
            return;
        }
        // Transport failure (peer vanished, read timed out): no reply
        // possible.
        Err(_) => return,
    };
    let response = dispatch(&shared.state, &request);
    let mut stream = reader.into_inner();
    let _ = write_response(&mut stream, &response);
    if request.method == "POST" && request.path == "/shutdown" && response.status == 200 {
        shared.begin_shutdown();
    }
}

/// Render the one-line startup banner used by the binary (and asserted
/// by the CI smoke test).
#[must_use]
pub fn banner(addr: SocketAddr, backend: &str, workers: usize, queue_depth: usize) -> String {
    Json::obj(vec![
        ("listening", Json::Str(format!("http://{addr}"))),
        ("backend", Json::str(backend)),
        ("workers", Json::Int(workers as i128)),
        ("queue_depth", Json::Int(queue_depth as i128)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use an5d::SerialBackend;

    fn test_server(workers: usize, queue_depth: usize) -> Server {
        Server::start_with_backend(
            &ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers,
                queue_depth,
                cache_capacity: 64,
            },
            Arc::new(SerialBackend),
        )
        .expect("bind ephemeral port")
    }

    #[test]
    fn serves_stats_and_shuts_down_cleanly() {
        let server = test_server(2, 16);
        let addr = server.addr();
        let (status, body) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\""), "{body}");
        let (status, body) = client::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.wait();
    }

    #[test]
    fn stop_joins_without_outside_help() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let (status, _) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn bad_requests_get_error_responses_not_hangs() {
        let server = test_server(2, 16);
        let addr = server.addr();
        // Malformed request line.
        let (status, body) = client::raw(addr, "BOGUS\r\n\r\n").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
        // Unknown endpoint.
        let (status, _) = client::post(addr, "/nope", "{}").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }
}
