//! The `an5d-serve` server: a nonblocking reactor owning every
//! connection, a bounded dispatch queue with admission control, a fixed
//! worker pool for CPU-bound request handling, persistent (keep-alive)
//! connections and graceful shutdown.
//!
//! Concurrency model (all std, no external runtime):
//!
//! * the **reactor thread** (see [`crate::reactor`]) owns the
//!   `TcpListener` and every connection as nonblocking sockets in a
//!   `poll(2)`-backed readiness loop. Idle keep-alive connections park
//!   there for the cost of one `pollfd` entry — connection count is
//!   unbounded-but-gauged (`/metrics`: `an5d_connections_*`), and
//!   [`ServerConfig::workers`] bounds CPU-bound concurrency, not
//!   clients;
//! * **worker threads** pop *complete parsed requests* from a bounded
//!   dispatch queue, run [`crate::handlers::dispatch`], render the
//!   response bytes, and hand them back to the reactor. When the queue
//!   is at [`ServerConfig::queue_depth`] the reactor answers `503`
//!   immediately (admission control sheds requests instead of growing
//!   an unbounded backlog);
//! * **keep-alive policy** is enforced by the reactor's timer wheel
//!   ([`ServerConfig::keep_alive_timeout`] between requests, a fixed
//!   I/O budget within one) and by the workers
//!   ([`ServerConfig::max_requests_per_connection`], `Connection:
//!   close`);
//! * **graceful shutdown** — `POST /shutdown` (or [`Server::stop`]) sets
//!   the shutdown flag and wakes both halves: workers drain the
//!   dispatch queue before exiting, the reactor closes parked
//!   connections immediately and keeps in-flight responses draining, so
//!   every admitted request is answered.

use crate::handlers::{dispatch, ServiceState};
use crate::http::{
    encode_chunk, render_head_bytes, write_response, ChunkSource, Request, Response, ResponseBody,
    CHUNK_TERMINATOR,
};
use crate::json::Json;
use crate::reactor::Reactor;
use an5d::{backend_from_env, ExecutionBackend};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// I/O budget for one read or write step of a request/response cycle:
/// the deadline the reactor arms while a request is arriving, a
/// response is draining, or a fresh connection has yet to speak.
pub(crate) const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (use port 0 for an ephemeral port).
    pub addr: String,
    /// CPU-bound dispatch worker threads. Bounds concurrent request
    /// *handling*; open connections are bounded only by file
    /// descriptors (the reactor parks idle ones for free).
    pub workers: usize,
    /// Bounded dispatch-queue depth; parsed requests beyond it are
    /// answered 503.
    pub queue_depth: usize,
    /// Per-device plan-cache shard capacity (each registered device gets
    /// its own shard of this size).
    pub cache_capacity: usize,
    /// How long a persistent connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_timeout: Duration,
    /// Maximum requests served on one connection before the server
    /// closes it (bounds how long a single client can hold one
    /// connection's server-side state).
    pub max_requests_per_connection: usize,
    /// Path of the persisted tuning database: `/tune` reads through it,
    /// fresh results are appended, and every device shard warms its
    /// caches from it at startup. `None` (the default) disables
    /// persistence. The `an5d-serve` binary resolves the `AN5D_TUNE_DB`
    /// environment variable into this field; the library default stays
    /// `None` so embedders and tests never pick up a DB implicitly.
    pub tune_db: Option<String>,
    /// `fsync` the tuning database after every append. On by default:
    /// on the service path an acknowledged `/tune` result must survive a
    /// crash, and tuning cost dwarfs the fsync. Benchmarks and embedders
    /// that only need OS-buffer durability can turn it off.
    pub sync_tune_db: bool,
    /// Deterministic fault-injection plan
    /// (see [`an5d_fault::FaultPlan::parse`] for the spec grammar),
    /// installed process-wide at startup. `None` (the default) injects
    /// nothing and costs one relaxed atomic load per fault point. The
    /// `an5d-serve` binary resolves `--faults` / the `AN5D_FAULTS`
    /// environment variable into this field.
    pub faults: Option<String>,
    /// Requests slower than this are logged to stderr with their trace
    /// id (see `GET /trace?id=`).
    pub slow_request_threshold: Duration,
    /// Completed request traces retained for `GET /trace`.
    pub trace_capacity: usize,
    /// Execution backend spec (`serial`, `parallel[:N]`, `vector[:N]` —
    /// see [`an5d::create_backend`]). `None` (the default) falls back to
    /// the `AN5D_BACKEND` environment variable; the `an5d-serve` binary
    /// resolves `--backend` into this field. Unlike the env fallback, an
    /// invalid spec here is a hard startup error, not a silent
    /// serial-with-a-note downgrade.
    pub backend: Option<String>,
    /// Payload bytes per chunk on streamed responses (`/codegen` and
    /// `/execute` with `?stream=1`, `/batch`). Smaller chunks lower
    /// time-to-first-byte on slow producers; larger chunks amortize
    /// framing overhead.
    pub stream_chunk_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7845".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            keep_alive_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1000,
            tune_db: None,
            sync_tune_db: true,
            faults: None,
            slow_request_threshold: crate::handlers::DEFAULT_SLOW_THRESHOLD,
            trace_capacity: crate::handlers::DEFAULT_TRACE_CAPACITY,
            backend: None,
            stream_chunk_bytes: crate::handlers::DEFAULT_STREAM_CHUNK,
        }
    }
}

/// One complete parsed request travelling reactor → worker.
pub(crate) struct DispatchItem {
    /// The reactor's token for the owning connection.
    pub(crate) token: usize,
    pub(crate) request: Request,
    /// Requests served on that connection including this one — the
    /// worker folds it into the keep-alive decision.
    pub(crate) served: usize,
}

/// The payload of one [`Completion`]: either fully-rendered response
/// bytes or a chunked head plus a live [`ResponseStream`] the worker is
/// still feeding.
pub(crate) enum CompletionBody {
    /// The whole response (head + body), rendered up front.
    Full(Vec<u8>),
    /// A streamed response: the chunked head is ready now, framed body
    /// segments arrive on `stream` as the worker produces them.
    Stream {
        head: Vec<u8>,
        stream: Arc<ResponseStream>,
    },
}

/// Rendered response bytes travelling worker → reactor.
pub(crate) struct Completion {
    pub(crate) token: usize,
    pub(crate) body: CompletionBody,
    /// Whether the rendered `Connection:` header promised keep-alive;
    /// the reactor closes after the write when it did not.
    pub(crate) keep_alive: bool,
}

/// Bound on bytes queued inside one [`ResponseStream`] before the
/// producing worker blocks — backpressure so a slow client cannot make
/// a fast producer buffer the whole body anyway.
const STREAM_HIGH_WATER: usize = 256 * 1024;

/// Mutable half of a [`ResponseStream`].
#[derive(Default)]
struct StreamBuf {
    /// Chunk-framed segments ready for the reactor to write.
    segments: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    /// Producer finished cleanly (terminator already queued).
    done: bool,
    /// Producer failed mid-body; the connection must be aborted.
    failed: bool,
    /// Consumer (reactor) is gone; pushes are pointless.
    closed: bool,
}

/// Observed stream state after a [`ResponseStream::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StreamStatus {
    /// Producer still running: more segments may arrive.
    Open,
    /// Producer finished cleanly; drained segments are the last.
    Done,
    /// Producer failed mid-body: abort the connection (a half-written
    /// chunked body cannot be resynchronized).
    Failed,
}

/// A bounded worker→reactor byte channel carrying one streamed response
/// body: the worker pushes chunk-framed segments (blocking at
/// [`STREAM_HIGH_WATER`]), the reactor drains them under `POLLOUT`.
pub(crate) struct ResponseStream {
    buf: Mutex<StreamBuf>,
    space: Condvar,
}

impl ResponseStream {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            buf: Mutex::new(StreamBuf::default()),
            space: Condvar::new(),
        })
    }

    /// Queue one framed segment, blocking while the buffered backlog
    /// sits at the high-water mark. `Err(())` means the reactor closed
    /// the connection — the producer should stop.
    fn push(&self, segment: Vec<u8>) -> Result<(), ()> {
        let mut buf = self.buf.lock().expect("response stream poisoned");
        while buf.queued_bytes >= STREAM_HIGH_WATER && !buf.closed {
            buf = self.space.wait(buf).expect("response stream poisoned");
        }
        if buf.closed {
            return Err(());
        }
        buf.queued_bytes += segment.len();
        buf.segments.push_back(segment);
        Ok(())
    }

    /// Queue the body terminator and mark the stream complete — one
    /// lock, so the reactor can never observe `done` without it.
    fn finish(&self) {
        let mut buf = self.buf.lock().expect("response stream poisoned");
        if !buf.closed {
            buf.queued_bytes += CHUNK_TERMINATOR.len();
            buf.segments.push_back(CHUNK_TERMINATOR.to_vec());
        }
        buf.done = true;
    }

    /// Mark the stream failed mid-body.
    fn fail(&self) {
        self.buf.lock().expect("response stream poisoned").failed = true;
    }

    /// Reactor side: take every queued segment and observe the
    /// producer's state, freeing backpressure space.
    pub(crate) fn drain(&self) -> (Vec<Vec<u8>>, StreamStatus) {
        let mut buf = self.buf.lock().expect("response stream poisoned");
        let segments: Vec<Vec<u8>> = buf.segments.drain(..).collect();
        buf.queued_bytes = 0;
        let status = if buf.failed {
            StreamStatus::Failed
        } else if buf.done {
            StreamStatus::Done
        } else {
            StreamStatus::Open
        };
        self.space.notify_all();
        (segments, status)
    }

    /// Reactor side: the connection is gone; unblock and stop the
    /// producer.
    pub(crate) fn close(&self) {
        let mut buf = self.buf.lock().expect("response stream poisoned");
        buf.closed = true;
        buf.segments.clear();
        buf.queued_bytes = 0;
        self.space.notify_all();
    }
}

/// State shared between the reactor thread and the dispatch workers.
pub(crate) struct Shared {
    pub(crate) state: ServiceState,
    /// Bounded dispatch queue (reactor pushes, workers pop).
    pub(crate) queue: Mutex<VecDeque<DispatchItem>>,
    pub(crate) available: Condvar,
    /// Finished responses (workers push, reactor drains after a wake).
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) queue_depth: usize,
    pub(crate) keep_alive_timeout: Duration,
    pub(crate) max_requests_per_connection: usize,
    /// Requests served on a connection that had already served at least
    /// one (i.e. saved TCP connection setups).
    pub(crate) reused_requests: AtomicU64,
    pub(crate) addr: SocketAddr,
    /// Nudges the reactor out of `poll` (completions, shutdown).
    pub(crate) waker: an5d_net::Waker,
}

impl Shared {
    /// Pop the next request; `None` once shut down and drained.
    fn pop(&self) -> Option<DispatchItem> {
        let mut queue = self.queue.lock().expect("dispatch queue poisoned");
        loop {
            if let Some(item) = queue.pop_front() {
                return Some(item);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self.available.wait(queue).expect("dispatch queue poisoned");
        }
    }

    /// Flip the shutdown flag and wake the reactor and all workers.
    pub(crate) fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return; // already shutting down
        }
        // Notify while holding the queue mutex: a worker that has just
        // read `shutdown == false` under the lock is then either still
        // holding it (we wait; it parks; our notify wakes it) or already
        // parked in `wait` — without the lock the notification could
        // slip into the gap and be lost, leaving that worker (and
        // `Server::stop`) asleep forever.
        let guard = self.queue.lock().expect("dispatch queue poisoned");
        self.available.notify_all();
        drop(guard);
        // Wake the reactor out of `poll`; it notices the flag, stops
        // accepting and starts draining.
        self.waker.wake();
    }
}

/// Render a buffered response to owned bytes exactly as it would hit
/// the wire. Infallible for [`ResponseBody::Full`] bodies (the sink is
/// a `Vec`); streamed bodies take the [`CompletionBody::Stream`] path
/// instead.
pub(crate) fn render_response(response: &mut Response, keep_alive: bool) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_response(&mut bytes, response, keep_alive)
        .expect("rendering a buffered response cannot fail");
    bytes
}

/// A running `an5d-serve` instance.
///
/// Dropping a `Server` without calling [`Server::stop`] or
/// [`Server::wait`] detaches the threads (the process keeps serving
/// until exit); tests and the binary always join explicitly.
pub struct Server {
    shared: Arc<Shared>,
    reactor_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("workers", &self.worker_handles.len())
            .finish()
    }
}

impl Server {
    /// Bind and start serving on the backend [`ServerConfig::backend`]
    /// names, falling back to the process default (`AN5D_BACKEND`) when
    /// it is `None`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures; rejects an invalid
    /// [`ServerConfig::backend`] spec (an explicitly requested backend
    /// must not silently degrade to serial).
    pub fn start(config: &ServerConfig) -> io::Result<Server> {
        let backend = match &config.backend {
            Some(spec) => an5d::create_backend(spec).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "unknown backend spec {spec:?} (expected one of {:?}, \
                         optionally with :<threads>)",
                        an5d::available_backends()
                    ),
                )
            })?,
            None => backend_from_env(),
        };
        Self::start_with_backend(config, backend)
    }

    /// Bind and start serving on an explicit execution backend.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, tune-DB open failures when
    /// [`ServerConfig::tune_db`] names a file that exists but is not a
    /// tune DB — starting *without* the operator's requested persistence
    /// (silently re-tuning everything) would be worse than not starting —
    /// and malformed [`ServerConfig::faults`] specs (a chaos run with a
    /// typo'd plan silently injecting nothing would report a clean bill
    /// of health it never earned).
    pub fn start_with_backend(
        config: &ServerConfig,
        backend: Arc<dyn ExecutionBackend>,
    ) -> io::Result<Server> {
        if let Some(spec) = &config.faults {
            let plan = an5d_fault::FaultPlan::parse(spec)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
            an5d_fault::install(plan);
        }
        let mut state = ServiceState::new(backend, config.cache_capacity.max(1))
            .with_slow_threshold(config.slow_request_threshold)
            .with_trace_capacity(config.trace_capacity)
            .with_stream_chunk(config.stream_chunk_bytes);
        if let Some(path) = &config.tune_db {
            state = state.with_tune_db(Arc::new(
                an5d::TuneDb::open(path)?.sync_on_append(config.sync_tune_db),
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (waker, receiver) = an5d_net::wake()?;
        let shared = Arc::new(Shared {
            state,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            queue_depth: config.queue_depth.max(1),
            keep_alive_timeout: config.keep_alive_timeout.max(Duration::from_millis(1)),
            max_requests_per_connection: config.max_requests_per_connection.max(1),
            reused_requests: AtomicU64::new(0),
            addr,
            waker,
        });

        let reactor = Reactor::new(listener, Arc::clone(&shared), receiver)?;
        let reactor_handle = std::thread::Builder::new()
            .name("an5d-serve-reactor".to_string())
            .spawn(move || reactor.run())?;

        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let worker_shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("an5d-serve-worker-{index}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        Ok(Server {
            shared,
            reactor_handle: Some(reactor_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared service state (cache statistics, metrics).
    #[must_use]
    pub fn state(&self) -> &ServiceState {
        &self.shared.state
    }

    /// Requests served over an already-used (kept-alive) connection —
    /// each one is a TCP connection setup the client did not pay.
    #[must_use]
    pub fn reused_requests(&self) -> u64 {
        self.shared.reused_requests.load(Ordering::Relaxed)
    }

    /// Request graceful shutdown and join every thread. Queued requests
    /// are answered before workers exit.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn stop(mut self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Block until the server shuts down (via `POST /shutdown` or another
    /// thread calling [`Server::stop`]) and join every thread.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn wait(mut self) {
        self.join();
    }

    fn join(&mut self) {
        if let Some(handle) = self.reactor_handle.take() {
            handle.join().expect("reactor thread panicked");
        }
        for handle in self.worker_handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }
}

/// The dispatch-worker body: pop a parsed request, handle it, render
/// the response, hand the bytes back to the reactor. A streamed
/// response hands over its chunked head immediately and then keeps the
/// worker producing body chunks until the source is exhausted — the
/// reactor interleaves writes with other connections throughout.
fn worker_loop(shared: &Shared) {
    while let Some(item) = shared.pop() {
        let mut response = dispatch(&shared.state, &item.request);
        let shutting_down = item.request.method == "POST"
            && item.request.path == "/shutdown"
            && response.status == 200;
        let keep_alive = item.request.keep_alive
            && !shutting_down
            && item.served < shared.max_requests_per_connection
            && !shared.shutdown.load(Ordering::Acquire);
        match std::mem::replace(&mut response.body, ResponseBody::Full(String::new())) {
            ResponseBody::Stream(source) => {
                let head = render_head_bytes(&response, keep_alive, None);
                let stream = ResponseStream::new();
                push_completion(
                    shared,
                    Completion {
                        token: item.token,
                        body: CompletionBody::Stream {
                            head,
                            stream: Arc::clone(&stream),
                        },
                        keep_alive,
                    },
                );
                // Wake the reactor before producing: the first chunk can
                // hit the wire while the rest of the body is still being
                // computed (that gap is exactly the TTFB win).
                shared.waker.wake();
                stream_body(shared, source, &stream, item.request.deadline);
            }
            body @ ResponseBody::Full(_) => {
                response.body = body;
                let bytes = render_response(&mut response, keep_alive);
                push_completion(
                    shared,
                    Completion {
                        token: item.token,
                        body: CompletionBody::Full(bytes),
                        keep_alive,
                    },
                );
            }
        }
        if shutting_down {
            shared.begin_shutdown();
        }
        shared.waker.wake();
    }
}

fn push_completion(shared: &Shared, completion: Completion) {
    shared
        .completions
        .lock()
        .expect("completion queue poisoned")
        .push(completion);
}

/// Pull a [`ChunkSource`] to exhaustion on the dispatch worker, feeding
/// chunk-framed segments to the reactor through `stream` and waking it
/// after every handoff. The request's deadline is re-installed for the
/// producer's lifetime so deadline checkpoints inside the source (e.g.
/// per-job checks in a `/batch` run) keep honoring the client's budget
/// after `dispatch` has returned.
fn stream_body(
    shared: &Shared,
    mut source: ChunkSource,
    stream: &ResponseStream,
    deadline: Option<an5d_fault::Deadline>,
) {
    let _deadline_guard = deadline.map(an5d_fault::Deadline::install);
    loop {
        match an5d_fault::point("stream.chunk") {
            None | Some(an5d_fault::FaultAction::Short(_)) => {}
            Some(an5d_fault::FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(an5d_fault::FaultAction::Error) => {
                stream.fail();
                shared.waker.wake();
                return;
            }
        }
        match source() {
            Ok(Some(chunk)) => {
                if chunk.is_empty() {
                    continue;
                }
                if stream.push(encode_chunk(&chunk)).is_err() {
                    return; // connection gone; stop producing
                }
                shared.waker.wake();
            }
            Ok(None) => {
                stream.finish();
                shared.waker.wake();
                return;
            }
            Err(_) => {
                stream.fail();
                shared.waker.wake();
                return;
            }
        }
    }
}

/// Render the one-line startup banner used by the binary (and asserted
/// by the CI smoke test).
#[must_use]
pub fn banner(
    addr: SocketAddr,
    backend: &str,
    workers: usize,
    queue_depth: usize,
    devices: usize,
    tune_db: Option<&str>,
) -> String {
    Json::obj(vec![
        ("listening", Json::Str(format!("http://{addr}"))),
        ("backend", Json::str(backend)),
        ("workers", Json::Int(workers as i128)),
        ("queue_depth", Json::Int(queue_depth as i128)),
        ("devices", Json::Int(devices as i128)),
        ("tune_db", tune_db.map_or(Json::Null, Json::str)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use an5d::SerialBackend;

    fn test_server_with(config: ServerConfig) -> Server {
        Server::start_with_backend(&config, Arc::new(SerialBackend)).expect("bind ephemeral port")
    }

    fn test_server(workers: usize, queue_depth: usize) -> Server {
        test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_depth,
            cache_capacity: 64,
            ..ServerConfig::default()
        })
    }

    #[test]
    fn serves_stats_and_shuts_down_cleanly() {
        let server = test_server(2, 16);
        let addr = server.addr();
        let (status, body) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\""), "{body}");
        let (status, body) = client::post(addr, "/shutdown", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"ok":true}"#);
        server.wait();
    }

    #[test]
    fn config_backend_spec_selects_the_backend_and_rejects_typos() {
        let server = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 4,
            cache_capacity: 16,
            backend: Some("vector:2".to_string()),
            ..ServerConfig::default()
        })
        .expect("valid spec starts");
        assert!(
            server.state().backend().describe().contains("vector"),
            "{}",
            server.state().backend().describe()
        );
        server.stop();

        let err = Server::start(&ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            backend: Some("vectr".to_string()),
            ..ServerConfig::default()
        });
        assert!(err.is_err(), "a typo'd backend must fail startup");
    }

    #[test]
    fn stop_joins_without_outside_help() {
        let server = test_server(1, 4);
        let addr = server.addr();
        let (status, _) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn bad_requests_get_error_responses_not_hangs() {
        let server = test_server(2, 16);
        let addr = server.addr();
        // Malformed request line.
        let (status, body) = client::raw(addr, "BOGUS\r\n\r\n").unwrap();
        assert_eq!(status, 400);
        assert!(body.contains("error"));
        // Unknown endpoint.
        let (status, _) = client::post(addr, "/nope", "{}").unwrap();
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn one_connection_serves_many_requests() {
        let server = test_server(2, 16);
        let addr = server.addr();
        let mut client = client::KeepAliveClient::new(addr);
        for round in 0..10 {
            let (status, body) = client.get("/stats").unwrap();
            assert_eq!(status, 200, "round {round}: {body}");
            assert!(body.contains("\"cache\""));
        }
        assert_eq!(
            client.reused(),
            9,
            "9 of 10 requests must reuse the connection"
        );
        assert_eq!(server.reused_requests(), 9);
        server.stop();
    }

    #[test]
    fn pipelined_requests_on_one_connection_are_all_answered() {
        use std::io::{Read, Write};
        let server = test_server(1, 8);
        let addr = server.addr();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Two back-to-back requests in one write; the second closes.
        stream
            .write_all(
                b"GET /stats HTTP/1.1\r\n\r\n\
                  GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert_eq!(
            raw.matches("HTTP/1.1 200 OK").count(),
            2,
            "both pipelined requests must be answered: {raw}"
        );
        assert!(raw.contains("Connection: keep-alive"));
        assert!(raw.contains("Connection: close"));
        server.stop();
    }

    #[test]
    fn request_bound_closes_the_connection_and_the_client_reconnects() {
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 64,
            max_requests_per_connection: 3,
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut client = client::KeepAliveClient::new(addr);
        for round in 0..10 {
            let (status, _) = client.get("/stats").unwrap();
            assert_eq!(status, 200, "round {round}");
        }
        // Connections are recycled every 3 requests, so fewer than 9
        // reuses — but the client kept going transparently.
        assert!(client.reused() < 9, "reused {}", client.reused());
        assert!(client.reused() >= 6, "reused {}", client.reused());
        server.stop();
    }

    #[test]
    fn idle_keep_alive_connections_are_reaped_quickly() {
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            cache_capacity: 64,
            keep_alive_timeout: Duration::from_millis(50),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut client = client::KeepAliveClient::new(addr);
        let (status, _) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        // Sit idle past the server's keep-alive timeout; the reactor
        // reaps the parked connection (a clean close, not an abort)...
        std::thread::sleep(Duration::from_millis(200));
        let snap = server.state().metrics().connections().snapshot();
        assert_eq!(snap.open, 0, "idle connection must be reaped: {snap:?}");
        assert_eq!(snap.aborted, 0, "idle reap is clean: {snap:?}");
        let (status, _) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        // ...and the idle client reconnects transparently.
        let (status, _) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        server.stop();
    }

    #[test]
    fn shutdown_is_not_delayed_by_idle_keep_alive_connections() {
        // A parked idle connection must not delay shutdown: the reactor
        // closes parked connections as soon as the flag is set.
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 8,
            cache_capacity: 64,
            keep_alive_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut idle = client::KeepAliveClient::new(addr);
        let (status, _) = idle.get("/stats").unwrap();
        assert_eq!(status, 200);
        // The connection now sits parked in the reactor.
        let started = std::time::Instant::now();
        server.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stop() took {:?} with an idle keep-alive connection",
            started.elapsed()
        );
    }

    #[test]
    fn keep_alive_connections_do_not_starve_queued_clients() {
        // More persistent clients than workers: with one worker, idle
        // connections park in the reactor instead of pinning the worker,
        // so a second keep-alive client is served promptly.
        let server = test_server_with(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 8,
            cache_capacity: 64,
            keep_alive_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        let mut first = client::KeepAliveClient::new(addr);
        let (status, _) = first.get("/stats").unwrap();
        assert_eq!(status, 200);
        // The first connection is now idle (parked).
        let mut second = client::KeepAliveClient::new(addr);
        let started = std::time::Instant::now();
        let (status, _) = second.get("/stats").unwrap();
        assert_eq!(status, 200);
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "second client waited {:?} behind an idle keep-alive connection",
            started.elapsed()
        );
        // Both clients keep interleaving on the single worker.
        for _ in 0..5 {
            assert_eq!(first.get("/stats").unwrap().0, 200);
            assert_eq!(second.get("/stats").unwrap().0, 200);
        }
        server.stop();
    }

    #[test]
    fn explicit_connection_close_is_honoured() {
        let server = test_server(1, 8);
        let addr = server.addr();
        let (status, body) =
            client::raw(addr, "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"cache\""));
        assert_eq!(server.reused_requests(), 0);
        server.stop();
    }

    #[test]
    fn connection_gauges_reflect_parked_connections() {
        let server = test_server(2, 16);
        let addr = server.addr();
        let mut clients: Vec<client::KeepAliveClient> =
            (0..5).map(|_| client::KeepAliveClient::new(addr)).collect();
        for client in &mut clients {
            let (status, _) = client.get("/stats").unwrap();
            assert_eq!(status, 200);
        }
        // All five connections are now idle between requests: parked.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = server.state().metrics().connections().snapshot();
            if snap.parked == 5 && snap.open == 5 {
                assert_eq!(snap.accepted, 5);
                assert_eq!(snap.active(), 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "gauges never settled: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // /metrics exposes the same numbers.
        let (status, text) = client::get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(
            text.contains("an5d_connections_parked 5"),
            "parked gauge missing: {}",
            text.lines()
                .filter(|l| l.contains("an5d_connections"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(text.contains("an5d_connections_aborted 0"), "no aborts");
        drop(clients);
        server.stop();
    }

    #[test]
    fn truncated_request_counts_as_aborted() {
        use std::io::Write;
        let server = test_server(1, 8);
        let addr = server.addr();
        // Die mid-request: headers cut off without the blank line.
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /parse HTTP/1.1\r\nContent-Le")
            .unwrap();
        drop(stream); // FIN mid-request
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = server.state().metrics().connections().snapshot();
            if snap.aborted == 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "abort never counted: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // A clean EOF between requests is NOT an abort.
        let mut client = client::KeepAliveClient::new(addr);
        let (status, _) = client.get("/stats").unwrap();
        assert_eq!(status, 200);
        drop(client); // clean keep-alive teardown
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let snap = server.state().metrics().connections().snapshot();
            if snap.open == 0 {
                assert_eq!(snap.aborted, 1, "clean EOF must not count: {snap:?}");
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "close never observed: {snap:?}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        server.stop();
    }
}
