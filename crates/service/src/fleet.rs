//! The device-fleet routing layer: one cache/driver shard per
//! registered GPU profile, plus the router that dispatches requests to
//! shards.
//!
//! One `an5d-serve` deployment fronts a heterogeneous cluster: tuning
//! and prediction results are device-specific, and tuned
//! temporal-blocking configurations shift materially across GPU
//! generations, so per-device state is correctness-relevant. The fleet
//! gives every device in the [`DeviceRegistry`] its own
//! [`PlanCache`] shard (backed by one [`ShardedPlanCache`], so a burst
//! of traffic for one device can never evict another device's working
//! set), its own [`BatchDriver`], and its own latency/load counters.
//!
//! Routing:
//!
//! * a request naming a `"device"` is dispatched to that device's shard
//!   (names resolve through the registry — canonical ids and aliases,
//!   case-insensitive);
//! * a device-*agnostic* request (no `"device"` on `/plan`, `/codegen`,
//!   `/execute`, whose responses do not depend on the device) goes to
//!   the **least-loaded** shard by in-flight request count, ties broken
//!   by id order so sequential traffic reuses one shard's cache;
//! * `/predict` and `/tune` *results* depend on the device, so with no
//!   `"device"` they go to the registry's **default** device (V100 in
//!   the standard fleet) — keeping responses deterministic byte-for-byte.

use crate::api::{unknown_device_error, ApiError};
use crate::json::Json;
use an5d::{
    stencil_fingerprint, suite, BatchDriver, CacheStats, DeviceId, DeviceRegistry,
    ExecutionBackend, FrameworkScheme, GpuDevice, PlanCache, ShardedPlanCache, StencilProblem,
    TuneDb, WarmRequest,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How to pick a shard when the request named no device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Any shard computes identical bytes: go to the least-loaded one
    /// (`/plan`, `/codegen`, `/execute`).
    LeastLoaded,
    /// The response depends on the device: go to the registry default so
    /// the bytes stay deterministic (`/predict`, `/tune`).
    DefaultDevice,
}

/// Point-in-time load/latency snapshot of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests dispatched to this shard (including failed ones).
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests currently executing on this shard.
    pub in_flight: u64,
    /// Total handler latency in microseconds.
    pub total_micros: u64,
    /// Worst handler latency in microseconds.
    pub max_micros: u64,
}

impl ShardStats {
    /// Mean handler latency in microseconds (0 with no requests).
    #[must_use]
    pub fn mean_micros(&self) -> u64 {
        self.total_micros.checked_div(self.requests).unwrap_or(0)
    }
}

/// Point-in-time tune-DB counters of one shard.
///
/// `hits`/`misses` observe the read-through path of `/tune`; `warmed`
/// counts the DB entries this shard warmed from at startup;
/// `refreshes` counts `/tune?refresh=true` overwrites; `tuner_runs`
/// counts actual Section 6.3 search invocations — the number the warm
/// start exists to drive to zero for repeated queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTuneDbStats {
    /// `/tune` queries answered from the persisted DB.
    pub hits: u64,
    /// `/tune` queries that missed the DB (and ran the tuner).
    pub misses: u64,
    /// `/tune?refresh=true` queries that bypassed and overwrote the DB.
    pub refreshes: u64,
    /// DB entries this shard warm-started from.
    pub warmed: u64,
    /// Plans pre-built into the shard's cache from warmed entries.
    pub warmed_plans: u64,
    /// Tuner search invocations (misses + refreshes + DB-less tunes).
    pub tuner_runs: u64,
}

/// One device's slice of the fleet: its profile, its plan/tuning cache
/// shard, its batch driver and its load counters.
pub struct FleetShard {
    id: DeviceId,
    device: GpuDevice,
    cache: Arc<PlanCache>,
    driver: BatchDriver,
    in_flight: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
    db_hits: AtomicU64,
    db_misses: AtomicU64,
    db_refreshes: AtomicU64,
    db_warmed: AtomicU64,
    db_warmed_plans: AtomicU64,
    tuner_runs: AtomicU64,
}

impl std::fmt::Debug for FleetShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetShard")
            .field("id", &self.id)
            .field("device", &self.device.name)
            .field("cache", &self.cache)
            .finish()
    }
}

impl FleetShard {
    /// The shard's canonical device id.
    #[must_use]
    pub fn id(&self) -> &DeviceId {
        &self.id
    }

    /// The GPU profile this shard serves.
    #[must_use]
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// The shard's plan/tuning cache (isolated from every other shard).
    #[must_use]
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The shard's batch driver (planning through the shard cache).
    #[must_use]
    pub fn driver(&self) -> &BatchDriver {
        &self.driver
    }

    /// The execution backend this shard runs `/execute` jobs on.
    #[must_use]
    pub fn backend(&self) -> &Arc<dyn ExecutionBackend> {
        self.driver.backend()
    }

    /// Run one request on this shard, tracking in-flight load (what the
    /// least-loaded router balances on) and latency.
    ///
    /// The in-flight gauge is restored by a drop guard, so a panicking
    /// handler cannot leak a phantom in-flight request and permanently
    /// bias the least-loaded router away from this shard.
    pub fn observe<T>(&self, f: impl FnOnce() -> Result<T, ApiError>) -> Result<T, ApiError> {
        struct InFlightGuard<'a>(&'a AtomicU64);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _guard = InFlightGuard(&self.in_flight);
        let started = Instant::now();
        let result = f();
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.requests.fetch_add(1, Ordering::Relaxed);
        if result.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
        result
    }

    /// Current load/latency counters.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            in_flight: self.in_flight.load(Ordering::SeqCst),
            total_micros: self.total_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }

    /// Current tune-DB counters.
    #[must_use]
    pub fn tunedb_stats(&self) -> ShardTuneDbStats {
        ShardTuneDbStats {
            hits: self.db_hits.load(Ordering::Relaxed),
            misses: self.db_misses.load(Ordering::Relaxed),
            refreshes: self.db_refreshes.load(Ordering::Relaxed),
            warmed: self.db_warmed.load(Ordering::Relaxed),
            warmed_plans: self.db_warmed_plans.load(Ordering::Relaxed),
            tuner_runs: self.tuner_runs.load(Ordering::Relaxed),
        }
    }

    /// Record the outcome of one `/tune` query on this shard.
    pub(crate) fn record_tune(&self, from_db: bool, refresh: bool) {
        if refresh {
            self.db_refreshes.fetch_add(1, Ordering::Relaxed);
        } else if from_db {
            self.db_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.db_misses.fetch_add(1, Ordering::Relaxed);
        }
        if !from_db {
            self.tuner_runs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a `/tune` served without a configured DB (always a tuner
    /// invocation).
    pub(crate) fn record_dbless_tune(&self) {
        self.tuner_runs.fetch_add(1, Ordering::Relaxed);
    }
}

/// The fleet: a [`DeviceRegistry`] with one [`FleetShard`] per profile
/// and the routing described in the module docs.
pub struct Fleet {
    registry: DeviceRegistry,
    cache: Arc<ShardedPlanCache>,
    shards: BTreeMap<DeviceId, FleetShard>,
    tune_db: Option<Arc<TuneDb>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("devices", &self.shards.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Fleet {
    /// A fleet with one shard per registry profile, each with its own
    /// plan cache of `shard_capacity` and a single-worker batch driver
    /// on `backend` (request-level parallelism comes from the server's
    /// connection workers).
    ///
    /// # Panics
    ///
    /// Panics on an empty registry — a fleet needs at least one device.
    #[must_use]
    pub fn new(
        backend: &Arc<dyn ExecutionBackend>,
        registry: DeviceRegistry,
        shard_capacity: usize,
    ) -> Self {
        assert!(!registry.is_empty(), "a fleet needs at least one device");
        let cache = Arc::new(ShardedPlanCache::new(shard_capacity));
        let shards = registry
            .devices()
            .map(|(id, device)| {
                let shard_cache = cache.shard(id);
                let driver = BatchDriver::new(Arc::clone(backend))
                    .with_cache(Arc::clone(&shard_cache))
                    .with_workers(1);
                (
                    id.clone(),
                    FleetShard {
                        id: id.clone(),
                        device: device.clone(),
                        cache: shard_cache,
                        driver,
                        in_flight: AtomicU64::new(0),
                        requests: AtomicU64::new(0),
                        errors: AtomicU64::new(0),
                        total_micros: AtomicU64::new(0),
                        max_micros: AtomicU64::new(0),
                        db_hits: AtomicU64::new(0),
                        db_misses: AtomicU64::new(0),
                        db_refreshes: AtomicU64::new(0),
                        db_warmed: AtomicU64::new(0),
                        db_warmed_plans: AtomicU64::new(0),
                        tuner_runs: AtomicU64::new(0),
                    },
                )
            })
            .collect();
        Self {
            registry,
            cache,
            shards,
            tune_db: None,
        }
    }

    /// Attach a persisted tuning database and warm every device shard
    /// from it: each shard counts its stored entries (served from memory
    /// by the read-through path from the first request on) and
    /// pre-builds the plans of every stored winner into its plan-cache
    /// shard, so the first `/tune`, `/plan` or `/codegen` for a
    /// previously-tuned key pays neither a tuner search nor a first
    /// plan build.
    ///
    /// Warming is keyed strictly: a record's benchmark-name *hint* is
    /// only trusted when the named suite stencil's canonical fingerprint
    /// matches the stored key (a renamed or re-defined benchmark skips
    /// plan warming rather than warming wrong plans), and entries are
    /// deduplicated by the plan cache's warm path, so a winner appearing
    /// as both `best` and in `measured` is built once.
    #[must_use]
    pub fn with_tune_db(self, db: Arc<TuneDb>) -> Self {
        for shard in self.shards.values() {
            let entries = db.entries_for_device(&shard.id);
            shard
                .db_warmed
                .store(entries.len() as u64, Ordering::Relaxed);
            let mut requests: Vec<WarmRequest> = Vec::new();
            for entry in &entries {
                let Some(def) = entry.hint.as_deref().and_then(suite::by_name) else {
                    continue;
                };
                if stencil_fingerprint(&def) != entry.key.stencil {
                    continue; // the hint no longer names this stencil
                }
                let Some(scheme) = FrameworkScheme::by_name(&entry.key.scheme) else {
                    continue;
                };
                let Ok(problem) =
                    StencilProblem::new(def.clone(), &entry.key.interior, entry.key.time_steps)
                else {
                    continue;
                };
                requests.extend(
                    std::iter::once(&entry.result.best)
                        .chain(entry.result.measured.iter())
                        .map(|candidate| {
                            WarmRequest::new(
                                def.clone(),
                                problem.clone(),
                                candidate.config.clone(),
                                scheme,
                            )
                        }),
                );
            }
            let warm_stats = shard.cache.warm(&requests);
            shard
                .db_warmed_plans
                .store(warm_stats.built as u64, Ordering::Relaxed);
        }
        Self {
            tune_db: Some(db),
            ..self
        }
    }

    /// Run one device's shard on its own execution backend (the rest of
    /// the fleet keeps the backend it was built with). The shard's batch
    /// driver is rebuilt on the new backend over the same cache shard —
    /// backends are semantically transparent, so routing is unaffected;
    /// only that shard's `/execute` speed (and its `"backend"` entry in
    /// `/stats`) changes.
    ///
    /// # Panics
    ///
    /// Panics when `id` names no shard — a per-shard backend override is
    /// startup configuration, and a typo'd device must fail loudly.
    #[must_use]
    pub fn with_shard_backend(mut self, id: &DeviceId, backend: Arc<dyn ExecutionBackend>) -> Self {
        let shard = self
            .shards
            .get_mut(id)
            .unwrap_or_else(|| panic!("no shard for device {id}"));
        shard.driver = BatchDriver::new(backend)
            .with_cache(Arc::clone(&shard.cache))
            .with_workers(1);
        self
    }

    /// The attached tuning database, if any.
    #[must_use]
    pub fn tune_db(&self) -> Option<&Arc<TuneDb>> {
        self.tune_db.as_ref()
    }

    /// The registry the fleet was built from (name resolution, default
    /// device, accepted-name error messages).
    #[must_use]
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// The underlying device-sharded plan cache.
    #[must_use]
    pub fn cache(&self) -> &Arc<ShardedPlanCache> {
        &self.cache
    }

    /// Number of shards (= registered devices).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` is impossible for a constructed fleet, but the method
    /// completes the `len` pair.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// All shards, in device-id order.
    pub fn shards(&self) -> impl Iterator<Item = &FleetShard> {
        self.shards.values()
    }

    /// The shard for an exact device id.
    #[must_use]
    pub fn shard(&self, id: &DeviceId) -> Option<&FleetShard> {
        self.shards.get(id)
    }

    /// Dispatch: the requested device's shard, or — for device-agnostic
    /// requests — the shard the policy selects.
    ///
    /// # Errors
    ///
    /// Rejects ids without a shard (cannot happen for ids resolved
    /// through [`Fleet::registry`], but the router guards anyway).
    pub fn route(
        &self,
        requested: Option<&DeviceId>,
        policy: RoutePolicy,
    ) -> Result<&FleetShard, ApiError> {
        match requested {
            Some(id) => self
                .shards
                .get(id)
                .ok_or_else(|| unknown_device_error(&self.registry)),
            None => Ok(match policy {
                RoutePolicy::DefaultDevice => self
                    .shards
                    .get(self.registry.default_id())
                    .expect("the default device is registered"),
                RoutePolicy::LeastLoaded => self.least_loaded(),
            }),
        }
    }

    /// The shard with the fewest in-flight requests; ties break in id
    /// order, so idle-fleet traffic reuses one shard's cache instead of
    /// spraying identical plans across shards.
    #[must_use]
    pub fn least_loaded(&self) -> &FleetShard {
        self.shards
            .values()
            .min_by_key(|shard| shard.in_flight.load(Ordering::SeqCst))
            .expect("a fleet has at least one shard")
    }

    /// Fleet-wide plan-cache totals (what the legacy top-level `"cache"`
    /// object of `/stats` reports).
    #[must_use]
    pub fn aggregate_cache_stats(&self) -> CacheStats {
        self.cache.aggregate_stats()
    }

    /// The `"devices"` object of `/stats`: per-device cache stats plus
    /// shard load/latency, in id order.
    #[must_use]
    pub fn stats_json(&self) -> Json {
        Json::Obj(
            self.shards
                .iter()
                .map(|(id, shard)| {
                    let stats = shard.stats();
                    (
                        id.to_string(),
                        Json::obj(vec![
                            ("profile", Json::str(&shard.device.name)),
                            ("backend", Json::Str(shard.backend().describe())),
                            ("cache", crate::api::cache_stats_json(&shard.cache.stats())),
                            (
                                "tunedb",
                                crate::api::shard_tunedb_json(&shard.tunedb_stats()),
                            ),
                            ("requests", Json::Int(i128::from(stats.requests))),
                            ("errors", Json::Int(i128::from(stats.errors))),
                            ("in_flight", Json::Int(i128::from(stats.in_flight))),
                            ("mean_us", Json::Int(i128::from(stats.mean_micros()))),
                            ("max_us", Json::Int(i128::from(stats.max_micros))),
                        ]),
                    )
                })
                .collect(),
        )
    }

    /// The top-level `"tunedb"` object of `/stats`: whether persistence
    /// is on, and the database-wide record/log counters.
    #[must_use]
    pub fn tunedb_json(&self) -> Json {
        match &self.tune_db {
            None => Json::obj(vec![("enabled", Json::Bool(false))]),
            Some(db) => {
                let stats = db.stats();
                Json::obj(vec![
                    ("enabled", Json::Bool(true)),
                    ("path", Json::Str(db.path().display().to_string())),
                    ("records", Json::Int(stats.live as i128)),
                    ("stale", Json::Int(stats.stale as i128)),
                    ("appends", Json::Int(i128::from(stats.appends))),
                    ("compactions", Json::Int(i128::from(stats.compactions))),
                    ("recovered", Json::Int(stats.recovered as i128)),
                    ("skipped_corrupt", Json::Int(stats.skipped_corrupt as i128)),
                    ("truncated_bytes", Json::Int(stats.truncated_bytes as i128)),
                ])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use an5d::SerialBackend;

    fn fleet() -> Fleet {
        Fleet::new(
            &(Arc::new(SerialBackend) as Arc<dyn ExecutionBackend>),
            DeviceRegistry::standard(),
            16,
        )
    }

    #[test]
    fn fleet_builds_one_shard_per_registered_device() {
        let fleet = fleet();
        assert_eq!(fleet.len(), 4);
        let ids: Vec<&str> = fleet.shards().map(|s| s.id().as_str()).collect();
        assert_eq!(ids, ["a100", "p100", "small", "v100"], "id order");
        for shard in fleet.shards() {
            assert_eq!(
                shard.device().short_name().to_ascii_lowercase(),
                shard.id().as_str()
            );
        }
    }

    #[test]
    fn named_routing_hits_the_named_shard() {
        let fleet = fleet();
        let p100 = DeviceId::new("p100");
        let shard = fleet.route(Some(&p100), RoutePolicy::LeastLoaded).unwrap();
        assert_eq!(shard.id(), &p100);
        assert!(fleet
            .route(Some(&DeviceId::new("h100")), RoutePolicy::LeastLoaded)
            .is_err());
    }

    #[test]
    fn default_policy_goes_to_the_registry_default() {
        let fleet = fleet();
        let shard = fleet.route(None, RoutePolicy::DefaultDevice).unwrap();
        assert_eq!(shard.id().as_str(), "v100");
    }

    #[test]
    fn least_loaded_prefers_idle_shards_and_breaks_ties_by_id() {
        let fleet = fleet();
        // Idle fleet: first id wins, deterministically.
        assert_eq!(fleet.least_loaded().id().as_str(), "a100");
        // Load the a100 shard: traffic must shift off it.
        let a100 = fleet.shard(&DeviceId::new("a100")).unwrap();
        a100.in_flight.fetch_add(2, Ordering::SeqCst);
        assert_eq!(fleet.least_loaded().id().as_str(), "p100");
        a100.in_flight.fetch_sub(2, Ordering::SeqCst);
    }

    #[test]
    fn observe_tracks_latency_errors_and_in_flight() {
        let fleet = fleet();
        let shard = fleet.shard(&DeviceId::new("v100")).unwrap();
        let ok: Result<u32, ApiError> = shard.observe(|| {
            assert_eq!(shard.stats().in_flight, 1, "counted while running");
            Ok(7)
        });
        assert_eq!(ok.unwrap(), 7);
        let err: Result<(), ApiError> = shard.observe(|| Err(ApiError::new("boom")));
        assert!(err.is_err());
        let stats = shard.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.in_flight, 0);
        assert!(stats.max_micros >= stats.mean_micros());
    }

    #[test]
    fn panicking_handlers_do_not_leak_the_in_flight_gauge() {
        let fleet = fleet();
        let shard = fleet.shard(&DeviceId::new("v100")).unwrap();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Result<(), ApiError> = shard.observe(|| panic!("handler blew up"));
        }));
        assert!(unwound.is_err());
        assert_eq!(
            shard.stats().in_flight,
            0,
            "a panic must not bias the least-loaded router forever"
        );
        assert_eq!(fleet.least_loaded().id().as_str(), "a100", "routing intact");
    }

    #[test]
    fn attaching_a_tune_db_warms_each_shard_from_its_own_entries() {
        use an5d::{An5d, PlanCache, Precision, SearchSpace, TuneDb};

        let path = std::env::temp_dir().join(format!("an5d-fleet-warm-{}.db", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let db = TuneDb::open(&path).unwrap();

        // Tune for two devices directly and persist the results.
        let an5d = An5d::benchmark("j2d5pt").unwrap();
        let problem = an5d.problem(&[512, 512], 50).unwrap();
        let space = SearchSpace::quick(2, Precision::Single);
        let registry = DeviceRegistry::standard();
        for name in ["v100", "p100"] {
            let (id, device) = registry.resolve(name).unwrap();
            an5d.tune_with_db(
                &problem,
                &id,
                device,
                &space,
                Arc::new(PlanCache::new(64)),
                &db,
                false,
            )
            .unwrap();
        }
        drop(db);

        // A fresh fleet warm-starts from the reopened DB.
        let db = Arc::new(TuneDb::open(&path).unwrap());
        let fleet = Fleet::new(
            &(Arc::new(SerialBackend) as Arc<dyn ExecutionBackend>),
            DeviceRegistry::standard(),
            64,
        )
        .with_tune_db(Arc::clone(&db));

        for (name, expect) in [("v100", 1), ("p100", 1), ("a100", 0), ("small", 0)] {
            let shard = fleet.shard(&DeviceId::new(name)).unwrap();
            let stats = shard.tunedb_stats();
            assert_eq!(stats.warmed, expect, "{name} warm count");
            if expect > 0 {
                assert!(
                    stats.warmed_plans > 0,
                    "{name} must pre-build its stored winners' plans"
                );
                assert!(shard.cache().stats().entries > 0);
            } else {
                assert_eq!(shard.cache().stats().entries, 0, "{name} stays cold");
            }
        }
        assert!(fleet.tune_db().is_some());
        let rendered = fleet.tunedb_json().render();
        assert!(rendered.contains("\"enabled\":true"), "{rendered}");
        assert!(rendered.contains("\"records\":2"), "{rendered}");

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_fleet_without_a_db_reports_persistence_disabled() {
        let fleet = fleet();
        assert!(fleet.tune_db().is_none());
        assert_eq!(fleet.tunedb_json().render(), r#"{"enabled":false}"#);
        let shard = fleet.shard(&DeviceId::new("v100")).unwrap();
        assert_eq!(shard.tunedb_stats(), ShardTuneDbStats::default());
    }

    #[test]
    fn shard_backend_overrides_rebuild_only_that_shard() {
        use an5d::VectorCpuBackend;
        let p100 = DeviceId::new("p100");
        let fleet = fleet().with_shard_backend(&p100, Arc::new(VectorCpuBackend::new(2)));
        assert_eq!(fleet.shard(&p100).unwrap().backend().name(), "vector");
        assert_eq!(
            fleet
                .shard(&DeviceId::new("v100"))
                .unwrap()
                .backend()
                .name(),
            "serial",
            "the rest of the fleet keeps its backend"
        );
        // The override rebuilt the driver over the same cache shard.
        let shard = fleet.shard(&p100).unwrap();
        assert!(Arc::ptr_eq(shard.cache(), shard.driver().cache()));
        let rendered = fleet.stats_json().render();
        assert!(rendered.contains("vector (2 pool executors"), "{rendered}");
    }

    #[test]
    fn shard_caches_are_isolated() {
        let fleet = fleet();
        let v100 = fleet.shard(&DeviceId::new("v100")).unwrap();
        let p100 = fleet.shard(&DeviceId::new("p100")).unwrap();
        assert!(!Arc::ptr_eq(v100.cache(), p100.cache()));
        assert!(Arc::ptr_eq(v100.cache(), v100.driver().cache()));
    }
}
