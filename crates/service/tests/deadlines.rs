//! End-to-end request-deadline contract:
//!
//! * a request whose `x-an5d-deadline-ms` budget has already expired at
//!   dispatch is shed with `503` + `Retry-After` **without occupying a
//!   worker**;
//! * a `/tune` whose budget is smaller than the sweep cost aborts
//!   mid-sweep and is answered `504` with a structured partial-progress
//!   body;
//! * a malformed deadline header is rejected with `400` (never silently
//!   ignored).
//!
//! The mid-sweep test installs a **process-global** fault plan (a
//! deterministic per-candidate delay stretches the sweep past the
//! budget), so these tests live in their own binary and serialize on a
//! local mutex.

use an5d::SerialBackend;
use an5d_service::{client, Server, ServerConfig};
use std::sync::{Arc, Mutex};

/// Serializes the tests that install (or must observe the absence of)
/// the process-global fault plan.
static GLOBAL_PLAN: Mutex<()> = Mutex::new(());

fn start_server() -> Server {
    Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 16,
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port")
}

const PLAN_BODY: &str = r#"{"benchmark":"star2d1r","interior":[96,96],"steps":8,
                            "config":{"bt":2,"bs":[32],"precision":"double"}}"#;

#[test]
fn expired_at_admission_is_shed_with_503_and_retry_after_without_occupying_a_worker() {
    let _lock = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    // A 0 ms budget is stamped at header-parse time, so it is expired
    // with certainty by the time the reactor considers dispatching.
    let response =
        client::post_with_deadline(addr, "/plan", PLAN_BODY, 0).expect("shed response arrives");
    assert_eq!(response.status, 503, "{}", response.body);
    assert!(
        response.retry_after.is_some(),
        "deadline shed must carry Retry-After"
    );
    assert!(
        response.body.contains("deadline expired"),
        "{}",
        response.body
    );

    let metrics = server.state().metrics();
    assert_eq!(metrics.deadline_shed(), 1, "shed must be counted");
    // Never dispatched: the /plan handler saw zero requests, so no
    // worker time was spent on a request the client had abandoned.
    assert_eq!(
        metrics.endpoint("/plan").count,
        0,
        "an expired request must not reach a worker"
    );

    // The same request with a generous budget sails through — proving
    // the shed above was the deadline, not the request.
    let response =
        client::post_with_deadline(addr, "/plan", PLAN_BODY, 30_000).expect("healthy response");
    assert_eq!(response.status, 200, "{}", response.body);
    assert_eq!(metrics.endpoint("/plan").count, 1);

    // The shed is visible on /metrics for chaos harnesses to reconcile.
    let (status, metrics_text) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics_text.contains("an5d_deadline_shed_total 1"),
        "/metrics must expose the shed counter"
    );

    server.stop();
}

#[test]
fn tune_with_a_short_deadline_returns_504_with_partial_progress() {
    let _lock = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
    // Stretch the first two tuner candidates by 150 ms each: with a
    // 40 ms budget the request clears admission comfortably (an idle
    // server dispatches in well under 40 ms) but can never finish the
    // sweep — deterministic 504 regardless of host speed. The `#2`
    // fire limit keeps the already-expired tail of the sweep from
    // sleeping too (the checkpoint skips those candidates instantly).
    an5d_fault::install(
        an5d_fault::FaultPlan::parse("seed=1;tuner.candidate=delay:150#2").expect("valid plan"),
    );
    let server = start_server();
    let addr = server.addr();

    let body = r#"{"benchmark":"j2d5pt","interior":[256,256],"steps":50,
                   "device":"v100","precision":"single","space":"quick"}"#;
    let response =
        client::post_with_deadline(addr, "/tune", body, 40).expect("504 response arrives");
    an5d_fault::uninstall();

    assert_eq!(response.status, 504, "{}", response.body);
    // Structured partial-progress body: the uniform error field plus
    // how far the sweep got before the budget ran out.
    assert!(
        response.body.contains("\"deadline_exceeded\":true"),
        "{}",
        response.body
    );
    assert!(
        response.body.contains("\"completed\":"),
        "{}",
        response.body
    );
    assert!(response.body.contains("\"total\":"), "{}", response.body);
    assert!(
        response.body.contains("tuning deadline exceeded"),
        "{}",
        response.body
    );

    let metrics = server.state().metrics();
    assert!(
        metrics.deadline_expired() >= 1,
        "mid-processing expiry must be counted"
    );
    // This was a dispatched request that timed out, not an admission
    // shed.
    assert_eq!(metrics.deadline_shed(), 0);
    assert_eq!(metrics.endpoint("/tune").count, 1);
    assert_eq!(
        metrics.endpoint("/tune").errors,
        1,
        "a 504 is an error on the endpoint's books"
    );

    server.stop();
}

#[test]
fn malformed_deadline_header_is_rejected_with_400() {
    let _lock = GLOBAL_PLAN.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    let request = format!(
        "POST /plan HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nx-an5d-deadline-ms: soon\r\nConnection: close\r\n\r\n{PLAN_BODY}",
        PLAN_BODY.len()
    );
    let (status, body) = client::raw(addr, &request).expect("400 response arrives");
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("invalid x-an5d-deadline-ms"), "{body}");

    server.stop();
}
