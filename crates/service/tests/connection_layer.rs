//! Reactor shutdown regression: a `/shutdown` arriving while hundreds
//! of keep-alive connections sit parked and several requests are in
//! flight must (a) answer every in-flight request, (b) close every
//! parked connection with a clean EOF — never counted as aborted — and
//! (c) let `Server::wait()` return within a bounded time.

use an5d::SerialBackend;
use an5d_service::{client, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const PARKED: usize = 200;
const IN_FLIGHT: usize = 6;

/// Send one request on a raw socket and read the complete response, so
/// the reactor parks the connection afterwards. (The keep-alive client
/// would transparently reconnect after shutdown, hiding the EOF we want
/// to observe.)
fn park(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /devices HTTP/1.1\r\n\r\n")
        .expect("send");
    // Read headers up to the blank line, then exactly Content-Length
    // body bytes, leaving the connection idle between requests.
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        assert_eq!(stream.read(&mut byte).expect("read head"), 1);
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head);
    assert!(head.starts_with("HTTP/1.1 200"), "parked request: {head}");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("length header")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("read body");
    stream
}

#[test]
fn shutdown_answers_in_flight_requests_and_cleanly_closes_parked_connections() {
    let server = Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            cache_capacity: 64,
            // Long enough that no parked connection is reaped by the
            // idle timer mid-test: only shutdown may close them.
            keep_alive_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Park a few hundred idle keep-alive connections.
    let parked: Vec<TcpStream> = (0..PARKED).map(|_| park(addr)).collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = server.state().metrics().connections().snapshot();
        if snap.parked >= PARKED as u64 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {} of {PARKED} connections parked",
            snap.parked
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Launch in-flight work, then shut down while it is executing: with
    // 2 workers most of these sit in the dispatch queue, which shutdown
    // must drain, not drop.
    let body = r#"{"benchmark":"j2d5pt","interior":[128,128],"steps":12,
                   "config":{"bt":2,"bs":[48],"precision":"double"}}"#;
    let barrier = Arc::new(Barrier::new(IN_FLIGHT + 1));
    let in_flight: Vec<_> = (0..IN_FLIGHT)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                client::post(addr, "/execute", body)
            })
        })
        .collect();
    barrier.wait();
    std::thread::sleep(Duration::from_millis(30));

    let shutdown_at = Instant::now();
    let (status, _) = client::post(addr, "/shutdown", "").expect("shutdown request");
    assert_eq!(status, 200);

    // Every in-flight request is answered in full.
    for (index, thread) in in_flight.into_iter().enumerate() {
        let (status, body) = thread
            .join()
            .unwrap()
            .unwrap_or_else(|e| panic!("in-flight request {index} dropped: {e}"));
        assert_eq!(status, 200, "in-flight request {index}: {body}");
        assert!(body.contains("\"checksum\""), "in-flight request {index}");
    }

    // The reactor sweeps the parked set: open connections reach zero
    // and none of the closes count as aborted (the streams were idle
    // between requests — clean closes by definition).
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = server.state().metrics().connections().snapshot();
        if snap.open == 0 {
            assert_eq!(snap.parked, 0, "parked gauge must drain with open");
            assert_eq!(
                snap.aborted, 0,
                "shutdown closes are orderly, never aborted"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shutdown left {} connections open ({} parked)",
            snap.open,
            snap.parked
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // wait() must join reactor + workers within a bounded time.
    let done = Arc::new(AtomicBool::new(false));
    let waiter = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            server.wait();
            done.store(true, Ordering::SeqCst);
        })
    };
    let join_deadline = Instant::now() + Duration::from_secs(10);
    while !done.load(Ordering::SeqCst) {
        assert!(
            Instant::now() < join_deadline,
            "Server::wait() did not return within 10s of shutdown"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    waiter.join().unwrap();
    assert!(
        shutdown_at.elapsed() < Duration::from_secs(25),
        "shutdown took {:?}",
        shutdown_at.elapsed()
    );

    // Every parked socket sees EOF, not an error and not a hang.
    for (index, mut stream) in parked.into_iter().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut sink = [0u8; 16];
        match stream.read(&mut sink) {
            Ok(0) => {}
            Ok(n) => panic!("parked connection {index}: unexpected {n} bytes after shutdown"),
            Err(e) => panic!("parked connection {index}: expected clean EOF, got {e}"),
        }
    }
}
