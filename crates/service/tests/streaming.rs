//! Streaming round-trip tests: the chunked transfer coding survives
//! every byte split (mirroring `parser_incremental.rs` for the request
//! parser), streamed `/codegen`, `/execute` and `/batch` bodies
//! reassemble byte-identical to their buffered twins, `/batch` emits
//! job lines incrementally while later jobs are still running, and a
//! response that fails mid-stream aborts the connection (the
//! keep-alive regression behind `an5d_connections_aborted`).

use an5d::SerialBackend;
use an5d_service::{client, encode_chunk, ChunkDecoder, Server, ServerConfig, CHUNK_TERMINATOR};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Chunked codec round-trip at every byte split
// ---------------------------------------------------------------------

/// Payload sets to frame; each becomes one chunked body.
fn fixtures() -> Vec<Vec<Vec<u8>>> {
    vec![
        vec![],                                      // empty body: terminator only
        vec![b"x".to_vec()],                         // single one-byte chunk
        vec![b"hello".to_vec(), b" world".to_vec()], // two small chunks
        vec![vec![0u8; 300]],                        // multi-hex-digit size line
        vec![
            b"a".to_vec(),
            b"bb".to_vec(),
            b"ccc".to_vec(),
            b"dddd".to_vec(),
        ],
        vec![b"\r\n0\r\n\r\n".to_vec()], // payload that looks like framing
    ]
}

/// Frame `payloads` as a complete chunked body.
fn wire_of(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut wire = Vec::new();
    for p in payloads {
        wire.extend_from_slice(&encode_chunk(p));
    }
    wire.extend_from_slice(CHUNK_TERMINATOR);
    wire
}

/// Ground truth: decode the whole wire in one call.
fn one_shot(wire: &[u8]) -> (Vec<u8>, usize, bool) {
    let mut decoder = ChunkDecoder::new();
    let mut out = Vec::new();
    let consumed = decoder.decode(wire, &mut out).expect("well-formed wire");
    (out, consumed, decoder.is_done())
}

/// Decode `wire` delivered as the given consecutive slices, resuming
/// the decoder across calls exactly as a client reading a socket would.
fn incremental(pieces: &[&[u8]]) -> (Vec<u8>, bool) {
    let mut decoder = ChunkDecoder::new();
    let mut out = Vec::new();
    for piece in pieces {
        let mut offset = 0;
        while offset < piece.len() && !decoder.is_done() {
            let consumed = decoder
                .decode(&piece[offset..], &mut out)
                .expect("well-formed wire");
            if consumed == 0 {
                break; // partial size line: needs more input
            }
            offset += consumed;
        }
    }
    (out, decoder.is_done())
}

#[test]
fn whole_wire_matches_the_payloads() {
    for payloads in fixtures() {
        let wire = wire_of(&payloads);
        let expected: Vec<u8> = payloads.concat();
        let (out, consumed, done) = one_shot(&wire);
        assert_eq!(out, expected);
        assert_eq!(consumed, wire.len());
        assert!(done);
    }
}

#[test]
fn every_two_chunk_split_matches_one_shot() {
    for payloads in fixtures() {
        let wire = wire_of(&payloads);
        let expected: Vec<u8> = payloads.concat();
        for cut in 0..=wire.len() {
            let (a, b) = wire.split_at(cut);
            let (out, done) = incremental(&[a, b]);
            assert_eq!(out, expected, "split at {cut}");
            assert!(done, "split at {cut}");
        }
    }
}

#[test]
fn byte_by_byte_replay_matches_one_shot() {
    for payloads in fixtures() {
        let wire = wire_of(&payloads);
        let expected: Vec<u8> = payloads.concat();
        let pieces: Vec<&[u8]> = wire.chunks(1).collect();
        let (out, done) = incremental(&pieces);
        assert_eq!(out, expected);
        assert!(done);
    }
}

#[test]
fn surplus_after_the_terminator_is_left_unconsumed() {
    for payloads in fixtures() {
        let mut wire = wire_of(&payloads);
        let body_len = wire.len();
        wire.extend_from_slice(b"NEXT RESPONSE");
        let (out, consumed, done) = one_shot(&wire);
        assert_eq!(out, payloads.concat());
        assert_eq!(consumed, body_len, "decoder must stop at the terminator");
        assert!(done);
    }
}

#[test]
fn truncation_is_never_silently_done() {
    for payloads in fixtures() {
        let wire = wire_of(&payloads);
        // Every strict prefix decodes without error but reports not-done:
        // the caller can tell a truncated body from a complete one.
        for cut in 0..wire.len() {
            let mut decoder = ChunkDecoder::new();
            let mut out = Vec::new();
            let mut offset = 0;
            while offset < cut {
                let consumed = decoder.decode(&wire[offset..cut], &mut out).unwrap();
                if consumed == 0 {
                    break;
                }
                offset += consumed;
            }
            assert!(!decoder.is_done(), "prefix of {cut} bytes claimed done");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random payloads delivered at random byte splits always decode
    /// to the concatenated payloads.
    fn random_chunkings_match_one_shot(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 0..6),
        mut cuts in prop::collection::vec(0usize..4096, 0..12),
    ) {
        let wire = wire_of(&payloads);
        for cut in &mut cuts {
            *cut %= wire.len() + 1;
        }
        cuts.sort_unstable();
        let mut pieces: Vec<&[u8]> = Vec::new();
        let mut prev = 0;
        for &cut in &cuts {
            pieces.push(&wire[prev..cut]);
            prev = cut;
        }
        pieces.push(&wire[prev..]);
        let (out, done) = incremental(&pieces);
        prop_assert_eq!(out, payloads.concat());
        prop_assert!(done);
    }
}

// ---------------------------------------------------------------------
// Server-side streaming
// ---------------------------------------------------------------------

/// Serializes every server-backed test in this binary: fault plans are
/// process-global, so a test installing one must not overlap a test
/// whose streams would trip it.
static FAULT_GATE: Mutex<()> = Mutex::new(());

fn start_server() -> Server {
    Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("server starts")
}

fn install_plan(spec: &str) {
    an5d_fault::install(an5d_fault::FaultPlan::parse(spec).expect("valid plan"));
}

const CODEGEN_BODY: &str = r#"{"benchmark":"star2d1r","interior":[128,128],"steps":16,
    "config":{"bt":4,"bs":[64],"hsn":64,"precision":"single"}}"#;

const EXECUTE_BODY: &str = r#"{"benchmark":"j2d5pt","interior":[24,24],"steps":5,
    "config":{"bt":2,"bs":[12],"precision":"double"}}"#;

/// Three `/execute`-style jobs, exercising both benchmarks and an
/// explicit grid seed.
const BATCH_BODY: &str = r#"{"jobs":[
    {"benchmark":"j2d5pt","interior":[24,24],"steps":5,
     "config":{"bt":2,"bs":[12],"precision":"double"}},
    {"benchmark":"star2d1r","interior":[128,128],"steps":8,
     "config":{"bt":4,"bs":[64],"hsn":64,"precision":"single"}},
    {"benchmark":"j2d5pt","interior":[16,16],"steps":3,
     "config":{"bt":2,"bs":[8],"precision":"double"},"seed":7}
]}"#;

#[test]
fn streamed_codegen_and_execute_match_their_buffered_twins() {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    for (path, body) in [("/codegen", CODEGEN_BODY), ("/execute", EXECUTE_BODY)] {
        let (status, buffered) = client::post(addr, path, body).expect("buffered request");
        assert_eq!(status, 200, "{path}: {buffered}");
        let streamed_path = format!("{path}?stream=1");
        let (status, streamed) =
            client::post(addr, &streamed_path, body).expect("streamed request");
        assert_eq!(status, 200, "{streamed_path}: {streamed}");
        assert_eq!(
            streamed, buffered,
            "{path}: streamed bytes must match buffered"
        );
    }

    // The streamed requests flowed through the stream metrics, not the
    // buffered counters alone.
    let streams = server.state().metrics().stream_snapshots();
    for path in ["/codegen", "/execute"] {
        let (_, snap) = streams
            .iter()
            .find(|(p, _)| p == path)
            .unwrap_or_else(|| panic!("{path} missing from stream snapshots"));
        assert_eq!(snap.streams, 1, "{path}");
        assert!(snap.chunks >= 1, "{path}");
        assert!(snap.bytes > 0, "{path}");
        assert_eq!(snap.ttfb.count(), 1, "{path}");
    }
    let (status, metrics) = client::get(addr, "/metrics").expect("/metrics");
    assert_eq!(status, 200);
    for series in [
        "an5d_streams_total{endpoint=\"/codegen\"}",
        "an5d_stream_chunks_total{endpoint=\"/codegen\"}",
        "an5d_stream_bytes_total{endpoint=\"/execute\"}",
        "an5d_stream_ttfb_us",
    ] {
        assert!(metrics.contains(series), "missing {series}");
    }

    let _ = client::post(addr, "/shutdown", "");
    server.wait();
}

#[test]
fn streamed_batch_matches_buffered_and_orders_lines_by_index() {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    let (status, buffered) = client::post(addr, "/batch?stream=0", BATCH_BODY).expect("buffered");
    assert_eq!(status, 200, "{buffered}");
    let (status, streamed) = client::post(addr, "/batch", BATCH_BODY).expect("streamed");
    assert_eq!(status, 200, "{streamed}");
    assert_eq!(streamed, buffered, "streamed NDJSON must match buffered");

    let lines: Vec<&str> = streamed.lines().collect();
    assert_eq!(lines.len(), 3);
    for (index, line) in lines.iter().enumerate() {
        let parsed = an5d_service::parse_json(line).expect("each line is standalone JSON");
        let got = parsed.get("index").and_then(an5d_service::Json::as_f64);
        assert_eq!(got, Some(index as f64), "line {index}: {line}");
        assert!(parsed.get("checksum").is_some(), "line {index}: {line}");
    }

    let _ = client::post(addr, "/shutdown", "");
    server.wait();
}

/// Read an HTTP response head byte by byte off a raw socket, returning
/// the head text (everything through the blank line).
fn read_head(stream: &mut TcpStream) -> String {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("head read");
        assert!(n > 0, "connection closed mid-head");
        head.push(byte[0]);
    }
    String::from_utf8(head).expect("ASCII head")
}

fn raw_post(addr: SocketAddr, path: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: an5d\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send request");
    stream
}

#[test]
fn streamed_responses_use_chunked_framing_on_the_wire() {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    let mut stream = raw_post(addr, "/codegen?stream=1", CODEGEN_BODY);
    let head = read_head(&mut stream);
    let lower = head.to_ascii_lowercase();
    assert!(lower.starts_with("http/1.1 200"), "{head}");
    assert!(lower.contains("transfer-encoding: chunked"), "{head}");
    assert!(!lower.contains("content-length"), "{head}");

    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("drain body");
    let mut decoder = ChunkDecoder::new();
    let mut body = Vec::new();
    let mut offset = 0;
    while !decoder.is_done() {
        let consumed = decoder
            .decode(&rest[offset..], &mut body)
            .expect("valid chunks");
        assert!(consumed > 0, "truncated chunked body on the wire");
        offset += consumed;
    }
    let body = String::from_utf8(body).expect("UTF-8 body");
    let (_, buffered) = client::post(addr, "/codegen", CODEGEN_BODY).expect("buffered");
    assert_eq!(body, buffered);

    let _ = client::post(addr, "/shutdown", "");
    server.wait();
}

#[test]
fn batch_lines_arrive_before_the_batch_completes() {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    // Delay the second chunk pull only: job 0's line hits the wire
    // immediately, then the producer stalls 600ms before job 1. If the
    // server buffered the NDJSON body, the first line could not arrive
    // ~600ms before the last byte.
    install_plan("seed=1;stream.chunk=delay:600@every:2#1");

    let mut stream = raw_post(addr, "/batch", BATCH_BODY);
    let head = read_head(&mut stream);
    assert!(
        head.to_ascii_lowercase()
            .contains("transfer-encoding: chunked"),
        "{head}"
    );

    let mut decoder = ChunkDecoder::new();
    let mut body = Vec::new();
    let mut buf = [0u8; 4096];
    let mut first_line_at: Option<Instant> = None;
    while !decoder.is_done() {
        let n = stream.read(&mut buf).expect("body read");
        assert!(n > 0, "connection closed before the terminator");
        let mut offset = 0;
        while offset < n {
            let consumed = decoder
                .decode(&buf[offset..n], &mut body)
                .expect("valid chunks");
            if consumed == 0 {
                break;
            }
            offset += consumed;
        }
        if first_line_at.is_none() && body.contains(&b'\n') {
            first_line_at = Some(Instant::now());
        }
    }
    let done_at = Instant::now();
    let first_line_at = first_line_at.expect("at least one NDJSON line");
    let gap = done_at.duration_since(first_line_at);
    assert!(
        gap >= Duration::from_millis(300),
        "first line arrived only {gap:?} before completion; expected an early line"
    );
    assert_eq!(String::from_utf8(body).expect("UTF-8").lines().count(), 3);

    an5d_fault::uninstall();
    let _ = client::post(addr, "/shutdown", "");
    server.wait();
}

#[test]
fn batch_honors_the_request_deadline_per_job() {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();

    // Burn the whole 100ms budget before the first job runs: every job
    // must then be refused with a deadline marker, not silently run
    // past the client's budget.
    install_plan("seed=1;stream.chunk=delay:400#1");
    let response =
        client::post_with_deadline(addr, "/batch", BATCH_BODY, 100).expect("streamed batch");
    assert_eq!(response.status, 200, "{}", response.body);
    let body = response.body;
    assert_eq!(body.lines().count(), 3);
    for line in body.lines() {
        assert!(line.contains("\"deadline_exceeded\":true"), "line: {line}");
    }

    an5d_fault::uninstall();
    let _ = client::post(addr, "/shutdown", "");
    server.wait();
}

#[test]
fn mid_stream_failure_aborts_the_connection() {
    let _gate = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
    an5d_fault::uninstall();
    let server = start_server();
    let addr = server.addr();
    let aborted_before = server.state().metrics().connections().snapshot().aborted;

    // Fail the producer after the first chunk: the head and one chunk
    // reach the wire, then the terminator never arrives. A chunked
    // response has no other way to signal failure, so the server must
    // sever the connection and the client must report truncation.
    install_plan("seed=1;stream.chunk=error@every:2#1");
    let err = client::post(addr, "/batch", BATCH_BODY).expect_err("truncated stream");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    an5d_fault::uninstall();

    // The reactor counts the severed connection as aborted.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let snapshot = server.state().metrics().connections().snapshot();
        if snapshot.aborted > aborted_before {
            break;
        }
        assert!(Instant::now() < deadline, "no abort recorded: {snapshot:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The server itself stays healthy: a fresh request succeeds.
    let (status, body) = client::post(addr, "/batch", BATCH_BODY).expect("recovery");
    assert_eq!(status, 200, "{body}");

    let _ = client::post(addr, "/shutdown", "");
    server.wait();
}
