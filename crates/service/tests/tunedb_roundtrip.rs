//! Tune-DB durability across server restarts: a second `an5d-serve`
//! process started against the DB written by a first one must answer
//! `/tune` for a previously-tuned key **without invoking the tuner**
//! (observed through the `/stats` tuner-invocation and DB-hit counters)
//! and with **byte-identical** response bodies; `/tune?refresh=true`
//! must bypass the stored record and force a re-tune.

use an5d::SerialBackend;
use an5d_service::{client, parse_json, Json, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

struct TempDb(PathBuf);

impl TempDb {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "an5d-service-tunedb-{label}-{}.db",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

fn start_server(db_path: &std::path::Path) -> Server {
    Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 64,
            tune_db: Some(db_path.display().to_string()),
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port")
}

/// The v100 shard's `"tunedb"` object plus the top-level one.
fn tunedb_stats(addr: SocketAddr) -> (Json, Json) {
    let (status, body) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let parsed = parse_json(&body).unwrap();
    let shard = parsed
        .get("devices")
        .and_then(|d| d.get("v100"))
        .and_then(|d| d.get("tunedb"))
        .expect("per-device tunedb stats")
        .clone();
    let top = parsed
        .get("tunedb")
        .expect("top-level tunedb stats")
        .clone();
    (shard, top)
}

fn counter(stats: &Json, key: &str) -> usize {
    stats.get(key).and_then(Json::as_usize).unwrap()
}

const TUNE_BODY: &str = r#"{"benchmark":"j2d5pt","interior":[512,512],"steps":50,
    "device":"v100","precision":"single","space":"quick"}"#;

#[test]
fn a_restarted_server_answers_tuned_keys_from_the_db_without_the_tuner() {
    let db = TempDb::new("restart");

    // ---- First server: cold DB, the query must run the tuner. ----
    let first = start_server(&db.0);
    let addr = first.addr();
    let (shard, top) = tunedb_stats(addr);
    assert_eq!(counter(&top, "records"), 0, "DB starts empty");
    assert_eq!(counter(&shard, "warmed"), 0);

    let (status, cold_body) = client::post(addr, "/tune", TUNE_BODY).unwrap();
    assert_eq!(status, 200, "{cold_body}");
    let (shard, top) = tunedb_stats(addr);
    assert_eq!(counter(&shard, "tuner_runs"), 1, "cold query tunes");
    assert_eq!(counter(&shard, "misses"), 1);
    assert_eq!(counter(&shard, "hits"), 0);
    assert_eq!(counter(&top, "records"), 1, "result persisted");

    // A repeat on the same process is already a DB hit.
    let (_, repeat_body) = client::post(addr, "/tune", TUNE_BODY).unwrap();
    assert_eq!(repeat_body, cold_body);
    let (shard, _) = tunedb_stats(addr);
    assert_eq!(counter(&shard, "hits"), 1);
    assert_eq!(counter(&shard, "tuner_runs"), 1, "no second search");

    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    first.wait();

    // ---- Second server: same DB file, fresh process. ----
    let second = start_server(&db.0);
    let addr = second.addr();
    let (shard, top) = tunedb_stats(addr);
    assert_eq!(counter(&shard, "warmed"), 1, "v100 warm-started");
    assert!(
        counter(&shard, "warmed_plans") > 0,
        "stored winners pre-planned"
    );
    assert_eq!(counter(&top, "records"), 1);
    assert_eq!(counter(&top, "recovered"), 1);

    let (status, warm_body) = client::post(addr, "/tune", TUNE_BODY).unwrap();
    assert_eq!(status, 200, "{warm_body}");
    assert_eq!(
        warm_body, cold_body,
        "a DB-served response must be byte-identical to the cold one"
    );
    let (shard, _) = tunedb_stats(addr);
    assert_eq!(
        counter(&shard, "tuner_runs"),
        0,
        "the warm server must not invoke the tuner for a stored key"
    );
    assert_eq!(counter(&shard, "hits"), 1, "answered from the DB");
    assert_eq!(counter(&shard, "misses"), 0);

    // ---- refresh=true bypasses the DB and forces a re-tune. ----
    let (status, refreshed_body) = client::post(addr, "/tune?refresh=true", TUNE_BODY).unwrap();
    assert_eq!(status, 200, "{refreshed_body}");
    assert_eq!(
        refreshed_body, cold_body,
        "tuning is deterministic: the re-tuned bytes still match"
    );
    let (shard, top) = tunedb_stats(addr);
    assert_eq!(counter(&shard, "refreshes"), 1);
    assert_eq!(
        counter(&shard, "tuner_runs"),
        1,
        "refresh re-ran the search"
    );
    assert_eq!(counter(&top, "records"), 1, "overwrite, not a new key");
    assert!(counter(&top, "appends") >= 1, "the overwrite was appended");

    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    second.wait();
}

#[test]
fn different_devices_tune_into_their_own_db_entries() {
    let db = TempDb::new("devices");
    let server = start_server(&db.0);
    let addr = server.addr();

    let body_for = |device: &str| {
        format!(
            r#"{{"benchmark":"j2d5pt","interior":[512,512],"steps":50,
                 "device":"{device}","precision":"single","space":"quick"}}"#
        )
    };
    let (status, v100_body) = client::post(addr, "/tune", &body_for("v100")).unwrap();
    assert_eq!(status, 200);
    let (status, p100_body) = client::post(addr, "/tune", &body_for("p100")).unwrap();
    assert_eq!(status, 200);
    assert_ne!(v100_body, p100_body, "device-specific tunings differ");

    let (_, top) = tunedb_stats(addr);
    assert_eq!(counter(&top, "records"), 2, "one record per device key");

    // Restart: each shard warms only from its own entries.
    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    server.wait();

    let server = start_server(&db.0);
    let addr = server.addr();
    let (status, body) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let parsed = parse_json(&body).unwrap();
    for (device, expect) in [("v100", 1), ("p100", 1), ("a100", 0)] {
        let warmed = parsed
            .get("devices")
            .and_then(|d| d.get(device))
            .and_then(|d| d.get("tunedb"))
            .and_then(|t| t.get("warmed"))
            .and_then(Json::as_usize)
            .unwrap();
        assert_eq!(warmed, expect, "{device}");
    }
    // Both warmed keys answer without the tuner.
    for device in ["v100", "p100"] {
        let (status, _) = client::post(addr, "/tune", &body_for(device)).unwrap();
        assert_eq!(status, 200);
    }
    let (status, body) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let parsed = parse_json(&body).unwrap();
    for device in ["v100", "p100"] {
        let tunedb = parsed
            .get("devices")
            .and_then(|d| d.get(device))
            .and_then(|d| d.get("tunedb"))
            .unwrap();
        assert_eq!(counter(tunedb, "tuner_runs"), 0, "{device}");
        assert_eq!(counter(tunedb, "hits"), 1, "{device}");
    }

    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    server.wait();
}
