//! Equivalence fuzzing for the resumable [`RequestParser`]: every
//! fixture stream is replayed whole, split at **every** byte boundary,
//! byte-by-byte, and in proptest-chosen random chunkings, and the
//! incremental parse must produce exactly the requests (and errors) the
//! one-shot [`read_request`] loop produces on the same bytes — including
//! pipelined back-to-back requests that share a chunk.
//!
//! Truncated streams are covered separately: cutting a stream anywhere
//! that is *not* a request boundary must leave the parser `!is_clean()`
//! (the reactor's abort oracle), while cutting exactly between requests
//! must leave it clean.

use an5d_service::http::{read_request, HttpError};
use an5d_service::{Parse, Request, RequestParser};
use proptest::prelude::*;
use std::io::BufReader;

/// One request's worth of bytes plus whether the one-shot parser treats
/// the unit as well-formed (errors poison the rest of the stream).
struct Unit {
    bytes: &'static [u8],
    ok: bool,
}

const fn ok(bytes: &'static [u8]) -> Unit {
    Unit { bytes, ok: true }
}

const fn bad(bytes: &'static [u8]) -> Unit {
    Unit { bytes, ok: false }
}

/// Fixture streams, each a concatenation of request units so the exact
/// request boundaries are known by construction. Error units only ever
/// appear last: both parsers stop at the first framing error.
fn fixtures() -> Vec<(&'static str, Vec<Unit>)> {
    vec![
        ("simple get", vec![ok(b"GET /stats HTTP/1.1\r\n\r\n")]),
        (
            "post with query and body",
            vec![ok(
                b"POST /parse?verbose=1 HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world",
            )],
        ),
        (
            "http/1.0 opting into keep-alive",
            vec![ok(
                b"GET /devices HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
            )],
        ),
        (
            "close wins over later keep-alive",
            vec![ok(
                b"GET /stats HTTP/1.1\r\nConnection: close\r\nConnection: keep-alive\r\n\r\n",
            )],
        ),
        (
            "body containing CRLF noise",
            vec![ok(
                b"POST /plan HTTP/1.1\r\nContent-Length: 14\r\n\r\nGET /x\r\n\r\nBODY",
            )],
        ),
        (
            "bare-LF line endings",
            vec![ok(b"POST /parse HTTP/1.1\nContent-Length: 3\n\nabc")],
        ),
        (
            "pipelined trio sharing the stream",
            vec![
                ok(b"POST /parse HTTP/1.1\r\nContent-Length: 5\r\n\r\nfirst"),
                ok(b"GET /devices HTTP/1.1\r\n\r\n"),
                ok(b"POST /stats HTTP/1.1\r\nConnection: close\r\nContent-Length: 6\r\n\r\nsecond"),
            ],
        ),
        (
            "request after an empty-bodied post",
            vec![
                ok(b"POST /shutdown HTTP/1.1\r\nContent-Length: 0\r\n\r\n"),
                ok(b"GET /metrics HTTP/1.1\r\n\r\n"),
            ],
        ),
        (
            "malformed request line",
            vec![bad(b"complete nonsense\r\n\r\n")],
        ),
        (
            "unsupported protocol version",
            vec![bad(b"GET /stats SPDY/3\r\n\r\n")],
        ),
        (
            "unparseable content-length",
            vec![bad(b"POST /parse HTTP/1.1\r\nContent-Length: nope\r\n\r\n")],
        ),
        (
            "oversized content-length is a 413",
            vec![bad(
                b"POST /parse HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n",
            )],
        ),
        (
            "transfer-encoding is refused with 501",
            vec![bad(
                b"POST /parse HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            )],
        ),
        (
            "good request then a poisoned one",
            vec![ok(b"GET /stats HTTP/1.1\r\n\r\n"), bad(b"BLARG\r\n\r\n")],
        ),
    ]
}

fn stream_of(units: &[Unit]) -> Vec<u8> {
    units.iter().flat_map(|u| u.bytes.iter().copied()).collect()
}

/// Byte offsets at which the stream sits exactly between requests.
/// Units after the first error never complete (failures are sticky), so
/// boundaries stop accruing there.
fn boundaries_of(units: &[Unit]) -> Vec<usize> {
    let mut at = 0;
    let mut out = vec![0];
    for unit in units {
        if !unit.ok {
            break;
        }
        at += unit.bytes.len();
        out.push(at);
    }
    out
}

/// Ground truth: loop the one-shot `read_request` over the whole stream.
/// Stops at the first framing error (the server closes the connection
/// there) or at end-of-stream.
fn one_shot(raw: &[u8]) -> Vec<Result<Request, HttpError>> {
    let mut reader = BufReader::new(raw);
    let mut out = Vec::new();
    loop {
        match read_request(&mut reader) {
            Ok(Ok(request)) => out.push(Ok(request)),
            Ok(Err(err)) => {
                out.push(Err(err));
                break;
            }
            // Clean EOF between requests (or transport-level truncation,
            // which the complete fixtures never hit).
            Err(_) => break,
        }
    }
    out
}

/// Feed the stream to the resumable parser in the given chunks, draining
/// every completed request after each feed. Returns the parse results
/// plus the final `is_clean()` verdict.
fn incremental(chunks: &[&[u8]]) -> (Vec<Result<Request, HttpError>>, bool) {
    let mut parser = RequestParser::new();
    let mut out = Vec::new();
    for chunk in chunks {
        parser.feed(chunk);
        loop {
            match parser.parse() {
                Parse::Ready(request) => out.push(Ok(request)),
                Parse::Failed(err) => {
                    out.push(Err(err));
                    return (out, parser.is_clean());
                }
                Parse::NeedMore => break,
            }
        }
    }
    (out, parser.is_clean())
}

fn assert_equivalent(name: &str, chunks: &[&[u8]], expected: &[Result<Request, HttpError>]) {
    let (got, _) = incremental(chunks);
    assert_eq!(
        got.len(),
        expected.len(),
        "{name}: request count diverged across {} chunks",
        chunks.len()
    );
    for (index, (got, want)) in got.iter().zip(expected).enumerate() {
        assert_eq!(got, want, "{name}: request {index} diverged");
    }
}

#[test]
fn whole_stream_matches_one_shot() {
    for (name, units) in fixtures() {
        let raw = stream_of(&units);
        assert_equivalent(name, &[&raw], &one_shot(&raw));
    }
}

#[test]
fn every_two_chunk_split_matches_one_shot() {
    for (name, units) in fixtures() {
        let raw = stream_of(&units);
        let expected = one_shot(&raw);
        for cut in 0..=raw.len() {
            let (a, b) = raw.split_at(cut);
            assert_equivalent(&format!("{name} @ split {cut}"), &[a, b], &expected);
        }
    }
}

#[test]
fn byte_by_byte_replay_matches_one_shot() {
    for (name, units) in fixtures() {
        let raw = stream_of(&units);
        let expected = one_shot(&raw);
        let chunks: Vec<&[u8]> = raw.chunks(1).collect();
        assert_equivalent(&format!("{name} byte-by-byte"), &chunks, &expected);
    }
}

#[test]
fn pipelined_requests_arriving_in_one_chunk_all_complete() {
    // The reactor relies on a single feed() surfacing *every* pipelined
    // request already in the buffer, one parse() call at a time.
    let (name, units) = ("pipelined trio in one chunk", &fixtures()[6].1);
    let raw = stream_of(units);
    let (got, clean) = incremental(&[&raw]);
    assert_eq!(got.len(), 3, "{name}: all three requests must surface");
    assert!(got.iter().all(Result::is_ok));
    assert!(clean, "{name}: buffer must be empty after the last request");
}

#[test]
fn truncation_is_clean_exactly_at_request_boundaries() {
    for (name, units) in fixtures() {
        let raw = stream_of(&units);
        let expected = one_shot(&raw);
        let boundaries = boundaries_of(&units);
        for cut in 0..=raw.len() {
            let prefix = &raw[..cut];
            let (got, clean) = incremental(&[prefix]);
            // Completed requests must be a prefix of the full stream's.
            let done = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
            let failed = got.last().is_some_and(Result::is_err);
            if !failed {
                assert_eq!(
                    got.len(),
                    done,
                    "{name} cut at {cut}: exactly the fully-delivered requests complete"
                );
            }
            for (index, (got, want)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(got, want, "{name} cut at {cut}: request {index} diverged");
            }
            // The reactor's abort oracle: a close is clean iff the
            // stream ends exactly between requests (and no framing
            // error poisoned the parser).
            assert_eq!(
                clean,
                boundaries.contains(&cut) && !failed,
                "{name} cut at {cut}: is_clean() must flag mid-request truncation"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random chunkings of every fixture — arbitrary cut points, in any
    /// order and multiplicity (duplicates yield empty chunks, which the
    /// parser must tolerate) — always match the one-shot parse.
    #[test]
    fn random_chunkings_match_one_shot(
        fixture in 0usize..64,
        mut cuts in prop::collection::vec(0usize..256, 0..12),
    ) {
        let fixtures = fixtures();
        let (name, units) = &fixtures[fixture % fixtures.len()];
        let raw = stream_of(units);
        let expected = one_shot(&raw);
        for cut in &mut cuts {
            *cut %= raw.len() + 1;
        }
        cuts.sort_unstable();
        let mut chunks: Vec<&[u8]> = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for &cut in &cuts {
            chunks.push(&raw[start..cut]);
            start = cut;
        }
        chunks.push(&raw[start..]);
        assert_equivalent(&format!("{name} cuts {cuts:?}"), &chunks, &expected);
    }
}
