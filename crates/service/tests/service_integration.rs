//! End-to-end test: start `an5d-serve` on an ephemeral port, hammer it
//! with concurrent tune/codegen/execute traffic from multiple client
//! threads, and assert that every response is byte-identical to a
//! direct `An5d` facade call and that the `/stats` cache hit rate rises
//! as the shared plan cache warms up.

use an5d::{
    generate_cuda_for_plan, An5d, BatchDriver, BlockConfig, GpuDevice, GridInit, Precision,
    SearchSpace, SerialBackend,
};
use an5d_service::{api, client, parse_json, Json, Server, ServerConfig};
use std::sync::Arc;

/// The mixed request set every client thread replays.
fn workload() -> Vec<(&'static str, String)> {
    vec![
        (
            "/tune",
            r#"{"benchmark":"j2d5pt","interior":[512,512],"steps":50,
                "device":"v100","precision":"single","space":"quick"}"#
                .to_string(),
        ),
        (
            "/codegen",
            r#"{"benchmark":"star2d1r","interior":[128,128],"steps":16,
                "config":{"bt":4,"bs":[64],"hsn":64,"precision":"single"}}"#
                .to_string(),
        ),
        (
            "/execute",
            r#"{"benchmark":"j2d5pt","interior":[24,24],"steps":5,
                "config":{"bt":2,"bs":[12],"precision":"double"}}"#
                .to_string(),
        ),
    ]
}

/// Compute the exact bytes the server must return for each workload
/// entry via direct facade calls (no server, fresh uncached state).
fn expected_bodies() -> Vec<String> {
    // /tune via the plain facade tuner (no shared cache): caching must
    // not change tuning results, so the service body must match.
    let tune = {
        let pipeline = An5d::benchmark("j2d5pt").unwrap();
        let problem = pipeline.problem(&[512, 512], 50).unwrap();
        let space = SearchSpace::quick(2, Precision::Single);
        let result = pipeline
            .tune(&problem, &GpuDevice::tesla_v100(), &space)
            .unwrap();
        api::tune_response(&result).render()
    };
    let codegen = {
        let pipeline = An5d::benchmark("star2d1r").unwrap();
        let problem = pipeline.problem(&[128, 128], 16).unwrap();
        let config = BlockConfig::new(4, &[64], Some(64), Precision::Single).unwrap();
        let plan = pipeline.plan(&problem, &config).unwrap();
        api::codegen_response(&generate_cuda_for_plan(&plan)).render()
    };
    let execute = {
        // A fresh driver (not the server's): the checksum and counters
        // must match regardless of whose cache/backend executed.
        let driver = BatchDriver::new(Arc::new(SerialBackend));
        let def = an5d::suite::by_name("j2d5pt").unwrap();
        let config = BlockConfig::new(2, &[12], None, Precision::Double).unwrap();
        let job = an5d::BatchJob::new(def, &[24, 24], 5, config)
            .with_init(GridInit::Hash { seed: 0x5EED });
        let outcome = driver.run(&[job]).pop().unwrap().unwrap();
        api::execute_response(&outcome).render()
    };
    vec![tune, codegen, execute]
}

fn hit_rate(addr: std::net::SocketAddr) -> f64 {
    let (status, body) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    parse_json(&body)
        .unwrap()
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(Json::as_f64)
        .expect("stats carries a cache hit rate")
}

#[test]
fn concurrent_clients_get_facade_identical_responses_and_a_warming_cache() {
    let server = Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 256,
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    let workload = workload();
    let expected = expected_bodies();

    // Round 1: 4 concurrent client threads × the full workload, each
    // over ONE persistent keep-alive connection. Every response must be
    // byte-identical to the direct facade rendering.
    const CLIENTS: usize = 4;
    const ROUNDS_PER_CLIENT: usize = 3;
    std::thread::scope(|scope| {
        for client_id in 0..CLIENTS {
            let workload = &workload;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = client::KeepAliveClient::new(addr);
                for round in 0..ROUNDS_PER_CLIENT {
                    for ((path, body), want) in workload.iter().zip(expected) {
                        let (status, got) = client
                            .post(path, body)
                            .unwrap_or_else(|e| panic!("client {client_id} {path}: {e}"));
                        assert_eq!(status, 200, "client {client_id} {path}: {got}");
                        assert_eq!(
                            &got, want,
                            "client {client_id} round {round} {path}: response must be \
                             byte-identical to the direct facade call"
                        );
                    }
                }
                let requests = (ROUNDS_PER_CLIENT * workload.len()) as u64;
                assert_eq!(
                    client.reused(),
                    requests - 1,
                    "client {client_id}: all but the first request must reuse the connection"
                );
            });
        }
    });
    assert_eq!(
        server.reused_requests(),
        (CLIENTS * (ROUNDS_PER_CLIENT * workload.len() - 1)) as u64,
        "server must have served every follow-up request on a kept-alive connection"
    );

    let warm_rate = hit_rate(addr);
    assert!(
        warm_rate > 0.0,
        "repeated identical requests must produce cache hits (rate {warm_rate})"
    );

    // Another identical round can only hit (every plan is cached now):
    // the overall hit rate must rise.
    for (path, body) in &workload {
        let (status, _) = client::post(addr, path, body).unwrap();
        assert_eq!(status, 200);
    }
    let warmer_rate = hit_rate(addr);
    assert!(
        warmer_rate > warm_rate,
        "hit rate must keep rising on repeated traffic ({warm_rate} → {warmer_rate})"
    );

    // /stats reflects the traffic the endpoints saw.
    let (_, stats_body) = client::get(addr, "/stats").unwrap();
    let stats = parse_json(&stats_body).unwrap();
    let tune_count = stats
        .get("endpoints")
        .and_then(|e| e.get("/tune"))
        .and_then(|t| t.get("count"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(tune_count, CLIENTS * ROUNDS_PER_CLIENT + 1);

    // Graceful shutdown over HTTP; wait() must return promptly.
    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn admission_control_sheds_load_with_503s_instead_of_queueing_unboundedly() {
    // 1 worker and a 1-deep dispatch queue. Under the reactor, admission
    // control guards *worker time*, not connections: an idle or
    // half-sent connection parks in the reactor for nearly nothing and
    // is never rejected, but complete parsed requests beyond the queue
    // depth are shed with immediate per-request 503s.
    let server = Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 1,
            cache_capacity: 16,
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .unwrap();
    let addr = server.addr();

    // Saturate the single worker with concurrent complete requests: at
    // any moment one executes, one sits queued, and the rest must be
    // turned away.
    let body = r#"{"benchmark":"star2d1r","interior":[96,96],"steps":8,
                   "config":{"bt":2,"bs":[32],"precision":"double"}}"#;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..8 {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut saw_503 = false;
            for _ in 0..200 {
                if stop.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                if let Ok(response) = client::post_response(addr, "/execute", body) {
                    if response.status == 503 {
                        // Every overload shed must tell well-behaved
                        // clients when to come back.
                        assert_eq!(
                            response.retry_after,
                            Some(1),
                            "503 shed must carry a Retry-After hint"
                        );
                        saw_503 = true;
                        stop.store(true, std::sync::atomic::Ordering::Relaxed);
                        break;
                    }
                }
            }
            saw_503
        }));
    }
    // Join every thread (no short-circuit) before checking the verdict.
    let verdicts: Vec<bool> = clients
        .into_iter()
        .map(|thread| thread.join().unwrap())
        .collect();
    assert!(
        verdicts.contains(&true),
        "admission control never shed a request"
    );
    assert!(server.state().metrics().rejected() > 0);

    // Meanwhile a half-sent request cannot pin the worker: it parks in
    // the reactor and fresh complete requests keep being answered.
    use std::io::Write;
    let mut parked = std::net::TcpStream::connect(addr).unwrap();
    parked
        .write_all(b"POST /stats HTTP/1.1\r\nContent-Length: 4\r\n\r\n")
        .unwrap();
    parked.flush().unwrap();
    let (status, _) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200, "half-sent request must not block the worker");
    drop(parked);
    server.stop();
}
