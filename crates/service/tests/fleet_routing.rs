//! Fleet-routing integration test: one `an5d-serve` process fronting
//! the standard four-device fleet, driven by concurrent mixed-device
//! clients.
//!
//! The core guarantee under test is **per-device cache isolation**: the
//! plan caches are sharded by `DeviceId`, so a V100 miss flood must
//! never evict a P100 entry — even while both devices are being hit
//! concurrently and the shards sit in one process.

use an5d::SerialBackend;
use an5d_service::{client, parse_json, Json, Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::Arc;

/// A `/predict` body for one device and temporal blocking degree (each
/// distinct `bt` is a distinct plan-cache key).
fn predict_body(device: &str, bt: usize) -> String {
    format!(
        r#"{{"benchmark":"j2d5pt","interior":[256,256],"steps":16,"device":"{device}",
             "config":{{"bt":{bt},"bs":[64],"precision":"double"}}}}"#
    )
}

fn device_stats(addr: SocketAddr, device: &str) -> (u64, u64, u64) {
    let (status, body) = client::get(addr, "/stats").unwrap();
    assert_eq!(status, 200);
    let stats = parse_json(&body).unwrap();
    let shard = stats
        .get("devices")
        .and_then(|d| d.get(device))
        .unwrap_or_else(|| panic!("/stats must report device {device}: {body}"));
    let field = |name: &str| {
        shard
            .get("cache")
            .and_then(|c| c.get(name))
            .and_then(Json::as_usize)
            .unwrap() as u64
    };
    (field("hits"), field("misses"), field("entries"))
}

#[test]
fn interleaved_devices_keep_isolated_cache_shards() {
    // Tiny per-device shards (4 plans) so the V100 flood overflows its
    // own shard many times over.
    let server = Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            cache_capacity: 4,
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // The fleet is visible before any traffic.
    let (status, body) = client::get(addr, "/devices").unwrap();
    assert_eq!(status, 200);
    let devices = parse_json(&body).unwrap();
    let listed = devices.get("devices").unwrap().as_array().unwrap().len();
    assert!(listed >= 4, "fleet lists {listed} profiles");

    // Seed the P100 working set: 3 distinct plans, all within capacity.
    let p100_working_set: Vec<String> = (1..=3).map(|bt| predict_body("p100", bt)).collect();
    for body in &p100_working_set {
        let (status, response) = client::post(addr, "/predict", body).unwrap();
        assert_eq!(status, 200, "{response}");
    }
    let (_, p100_misses_seeded, p100_entries) = device_stats(addr, "p100");
    assert_eq!(p100_misses_seeded, 3);
    assert_eq!(p100_entries, 3);

    // Concurrent mixed-device load: V100 clients flood their shard with
    // 12 distinct keys (3× its capacity) while P100 clients re-request
    // their working set the whole time.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                let mut conn = client::KeepAliveClient::new(addr);
                for round in 0..2 {
                    for bt in 1..=12 {
                        let (status, response) =
                            conn.post("/predict", &predict_body("v100", bt)).unwrap();
                        assert_eq!(status, 200, "v100 round {round} bt {bt}: {response}");
                    }
                }
            });
        }
        for _ in 0..2 {
            scope.spawn(|| {
                let mut conn = client::KeepAliveClient::new(addr);
                for round in 0..6 {
                    for body in &p100_working_set {
                        let (status, response) = conn.post("/predict", body).unwrap();
                        assert_eq!(status, 200, "p100 round {round}: {response}");
                    }
                }
            });
        }
    });

    // V100 churned: far more misses than its capacity, entries capped.
    let (_, v100_misses, v100_entries) = device_stats(addr, "v100");
    assert!(
        v100_misses > 4,
        "the flood must overflow the v100 shard (misses {v100_misses})"
    );
    assert!(v100_entries <= 4, "capacity bound holds ({v100_entries})");

    // P100 unscathed: every re-request of its working set since seeding
    // was a hit — a V100 miss never evicted a P100 entry.
    let (p100_hits, p100_misses, p100_entries) = device_stats(addr, "p100");
    assert_eq!(
        p100_misses, p100_misses_seeded,
        "a V100 miss must never evict a P100 entry"
    );
    assert_eq!(p100_entries, 3);
    assert_eq!(p100_hits, 2 * 6 * 3, "all concurrent p100 lookups hit");

    // Responses are still device-specific end to end.
    let (_, v100_body) = client::post(addr, "/predict", &predict_body("v100", 2)).unwrap();
    let (_, p100_body) = client::post(addr, "/predict", &predict_body("p100", 2)).unwrap();
    assert_ne!(v100_body, p100_body, "per-device predictions differ");

    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn device_agnostic_requests_are_routed_and_all_devices_are_tunable() {
    let server = Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 32,
            cache_capacity: 64,
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // /plan without a device: the router picks a shard, the response is
    // identical no matter which (asserted by repeating the request).
    let body = r#"{"benchmark":"star2d1r","interior":[64,64],"steps":8,
                   "config":{"bt":2,"bs":[32],"precision":"double"}}"#;
    let (status, first) = client::post(addr, "/plan", body).unwrap();
    assert_eq!(status, 200, "{first}");
    let (_, second) = client::post(addr, "/plan", body).unwrap();
    assert_eq!(first, second, "device-agnostic bytes are deterministic");

    // Every registered profile serves /tune: new devices are usable
    // without touching the API layer.
    let (_, devices_body) = client::get(addr, "/devices").unwrap();
    let listing = parse_json(&devices_body).unwrap();
    let mut tuned = 0;
    for device in listing.get("devices").unwrap().as_array().unwrap() {
        let id = device.get("id").unwrap().as_str().unwrap();
        let body = format!(
            r#"{{"benchmark":"j2d5pt","interior":[512,512],"steps":50,
                 "device":"{id}","precision":"single","space":"quick"}}"#
        );
        let (status, response) = client::post(addr, "/tune", &body).unwrap();
        assert_eq!(status, 200, "device {id}: {response}");
        assert!(response.contains("\"best\""), "device {id}: {response}");
        tuned += 1;
    }
    assert!(tuned >= 4, "tuned {tuned} devices");

    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    server.wait();
}
