//! Observability integration tests: the `GET /metrics` Prometheus
//! exposition, the `x-an5d-trace` → `GET /trace?id=` span-tree round
//! trip for a `/tune` request, the trace-ring eviction order, and the
//! client↔server latency-percentile cross-check at dispatch level.

use an5d::SerialBackend;
use an5d_service::{
    client, dispatch, parse_json, Json, Request, Server, ServerConfig, ServiceState,
};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;

struct TempDb(PathBuf);

impl TempDb {
    fn new(label: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "an5d-service-trace-{label}-{}.db",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        Self(path)
    }
}

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

fn start_server(tune_db: Option<&std::path::Path>) -> Server {
    Server::start_with_backend(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            cache_capacity: 64,
            tune_db: tune_db.map(|p| p.to_string_lossy().into_owned()),
            ..ServerConfig::default()
        },
        Arc::new(SerialBackend),
    )
    .expect("bind ephemeral port")
}

fn shutdown(addr: SocketAddr, server: Server) {
    let (status, _) = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(status, 200);
    server.wait();
}

const TUNE_BODY: &str = r#"{"benchmark":"j2d5pt","interior":[512,512],"steps":50,
    "device":"v100","precision":"single","space":"quick"}"#;

#[test]
fn metrics_endpoint_serves_prometheus_histograms() {
    let server = start_server(None);
    let addr = server.addr();

    // Generate some traffic so the histograms have samples.
    let body = r#"{"benchmark":"star2d1r","interior":[64,64],"steps":8,
                   "config":{"bt":2,"bs":[32],"precision":"double"}}"#;
    for _ in 0..3 {
        let (status, _) = client::post(addr, "/plan", body).unwrap();
        assert_eq!(status, 200);
    }

    let (status, text) = client::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    // Histogram series for the endpoint we hit, with the canonical
    // bucket/sum/count triplet and the +Inf terminal bucket.
    assert!(
        text.contains("# TYPE an5d_request_latency_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("an5d_request_latency_us_bucket{endpoint=\"/plan\",le=\"+Inf\"} 3"),
        "{text}"
    );
    assert!(
        text.contains("an5d_request_latency_us_count{endpoint=\"/plan\"} 3"),
        "{text}"
    );
    assert!(
        text.contains("an5d_request_latency_us_quantile{endpoint=\"/plan\",quantile=\"0.99\"}"),
        "{text}"
    );
    assert!(
        text.contains("an5d_requests_total{endpoint=\"/plan\"} 3"),
        "{text}"
    );
    // Fleet, cache, pool and ring gauges ride along.
    assert!(
        text.contains("an5d_plan_cache_hits_total{device="),
        "{text}"
    );
    assert!(text.contains("an5d_shard_requests_total{device="), "{text}");
    assert!(text.contains("an5d_pool_workers "), "{text}");
    assert!(text.contains("an5d_pool_batch_wall_us_bucket"), "{text}");
    assert!(text.contains("an5d_trace_ring_size "), "{text}");

    // The cumulative bucket counts are monotone non-decreasing.
    let counts: Vec<u64> = text
        .lines()
        .filter_map(|line| {
            line.strip_prefix("an5d_request_latency_us_bucket{endpoint=\"/plan\",le=")
                .and_then(|rest| rest.split_once("} "))
                .and_then(|(_, value)| value.trim().parse().ok())
        })
        .collect();
    assert!(!counts.is_empty());
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "cumulative buckets must be monotone: {counts:?}"
    );

    shutdown(addr, server);
}

#[test]
fn tune_trace_shows_nested_pipeline_spans() {
    let db = TempDb::new("tune-spans");
    let server = start_server(Some(&db.0));
    let addr = server.addr();

    let (status, _, trace_id) = client::post_traced(addr, "/tune", TUNE_BODY).unwrap();
    assert_eq!(status, 200);
    let trace_id = trace_id.expect("every /tune response carries x-an5d-trace");

    let (status, body) = client::get(addr, &format!("/trace?id={trace_id}")).unwrap();
    assert_eq!(status, 200, "{body}");
    let trace = parse_json(&body).unwrap();
    assert_eq!(
        trace.get("id").and_then(Json::as_str),
        Some(trace_id.as_str())
    );
    let total_us = trace.get("total_us").and_then(Json::as_usize).unwrap() as u64;
    let spans = trace.get("spans").unwrap().as_array().unwrap();

    let names: Vec<&str> = spans
        .iter()
        .map(|span| span.get("name").and_then(Json::as_str).unwrap())
        .collect();
    // The acceptance span set for a cold /tune: fingerprint (tune.key),
    // DB lookup (tunedb.get), search-space sweep (tuner.rank_sweep),
    // plan build (plan.build) and the simulated backend execution of
    // shortlisted candidates (tuner.measure).
    for required in [
        "/tune",
        "tune.key",
        "tunedb.get",
        "tuner.rank_sweep",
        "plan.build",
        "tuner.measure",
    ] {
        assert!(
            names.contains(&required),
            "trace must contain span {required:?}: {names:?}"
        );
    }

    // Span 0 is the handler root; every other span has a parent and
    // nests inside the root's duration. The root's *direct* children
    // run sequentially on the handler thread, so their durations sum to
    // at most the root's.
    let root = &spans[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("/tune"));
    assert_eq!(root.get("parent"), Some(&Json::Null));
    let root_dur = root.get("dur_us").and_then(Json::as_usize).unwrap() as u64;
    assert!(root_dur <= total_us);
    let mut child_sum = 0u64;
    for span in &spans[1..] {
        let parent = span.get("parent").and_then(Json::as_usize);
        assert!(parent.is_some(), "non-root spans have parents: {span:?}");
        if parent == Some(0) {
            child_sum += span.get("dur_us").and_then(Json::as_usize).unwrap() as u64;
        }
    }
    assert!(child_sum > 0, "the root span must have timed children");
    assert!(
        child_sum <= root_dur,
        "sequential children ({child_sum}us) must fit inside the root ({root_dur}us)"
    );

    // An unknown (but well-formed) id is a 404; a malformed id a 400.
    let (status, _) = client::get(addr, "/trace?id=0000000000000000").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::get(addr, "/trace?id=not-hex").unwrap();
    assert_eq!(status, 400);

    shutdown(addr, server);
}

#[test]
fn trace_ring_lists_requests_and_evicts_oldest_first() {
    let state = ServiceState::new(Arc::new(SerialBackend), 64).with_trace_capacity(3);
    let body = r#"{"benchmark":"star2d1r","interior":[32,32],"steps":4,
                   "config":{"bt":1,"bs":[16],"precision":"double"}}"#;
    let mut ids = Vec::new();
    for _ in 0..5 {
        let response = dispatch(&state, &Request::new("POST", "/plan", body.as_bytes()));
        assert_eq!(response.status, 200);
        ids.push(response.trace.clone().expect("traced response"));
    }

    let listing = dispatch(&state, &Request::new("GET", "/trace", b""));
    assert_eq!(listing.status, 200);
    let parsed = parse_json(&listing.body).unwrap();
    assert_eq!(parsed.get("capacity").and_then(Json::as_usize), Some(3));
    let listed: Vec<String> = parsed
        .get("traces")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|t| t.get("id").and_then(Json::as_str).unwrap().to_string())
        .collect();
    // Only the newest 3 of the 5 requests survive, oldest first.
    assert_eq!(listed, ids[2..].to_vec());

    // Evicted ids are gone; retained ids resolve.
    let gone = dispatch(
        &state,
        &Request::new("GET", &format!("/trace?id={}", ids[0]), b""),
    );
    assert_eq!(gone.status, 404);
    let kept = dispatch(
        &state,
        &Request::new("GET", &format!("/trace?id={}", ids[4]), b""),
    );
    assert_eq!(kept.status, 200);

    // /trace and /metrics requests themselves never enter the ring.
    let listing = dispatch(&state, &Request::new("GET", "/trace", b""));
    let parsed = parse_json(&listing.body).unwrap();
    assert_eq!(parsed.get("count").and_then(Json::as_usize), Some(3));
}

#[test]
fn server_histogram_percentiles_match_dispatched_latencies() {
    // Dispatch-level cross-check (no sockets, so client == server
    // timing): the /metrics histogram quantiles must agree with
    // nearest-rank percentiles computed from the same dispatch calls,
    // within the histogram's 1/32 bucket resolution.
    let state = ServiceState::new(Arc::new(SerialBackend), 64);
    let body = r#"{"benchmark":"star2d1r","interior":[48,48],"steps":4,
                   "config":{"bt":1,"bs":[16],"precision":"double"}}"#;
    let mut observed: Vec<u64> = Vec::new();
    for _ in 0..40 {
        let started = std::time::Instant::now();
        let response = dispatch(&state, &Request::new("POST", "/plan", body.as_bytes()));
        let elapsed = started.elapsed();
        assert_eq!(response.status, 200);
        observed.push(u64::try_from(elapsed.as_micros()).unwrap());
    }
    observed.sort_unstable();

    let histogram = state.metrics().histogram("/plan").expect("recorded");
    assert_eq!(histogram.count(), 40);
    for (q, pct) in [(0.5, 50usize), (0.95, 95), (0.99, 99)] {
        let rank = (pct * observed.len())
            .div_ceil(100)
            .clamp(1, observed.len());
        let client_q = observed[rank - 1];
        let server_q = histogram.quantile(q);
        // The dispatch wall time strictly contains the handler time the
        // server recorded, so the server quantile sits at or below the
        // observed one — and at most one bucket width above the true
        // handler value.
        let upper = client_q + client_q / 32 + 64;
        assert!(
            server_q <= upper,
            "p{pct}: server {server_q}us vs observed {client_q}us"
        );
        // Two-sided: the server quantile cannot sit implausibly far
        // below the observed percentile either — dispatch adds only
        // metrics/trace bookkeeping around the handler.
        assert!(
            server_q + server_q / 2 + 1_000 >= client_q,
            "p{pct}: server {server_q}us implausibly below observed {client_q}us"
        );
    }

    let elapsed_sum: u64 = observed.iter().sum();
    assert!(
        histogram.sum() <= elapsed_sum,
        "handler time must fit inside dispatch wall time"
    );
}
