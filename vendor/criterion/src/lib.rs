//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the small API surface the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark body is warmed up,
//! then timed over a fixed number of batches, and the best (minimum)
//! per-iteration wall-clock time is reported on stdout. That is enough to
//! compare implementations (e.g. serial vs parallel execution backends)
//! and to keep `cargo bench` working end-to-end; swapping the path
//! dependency for the real `criterion` restores statistical reporting
//! without touching any bench source.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Number of timed batches per benchmark.
const BATCHES: u32 = 10;
/// Target wall-clock time for one timed batch.
const TARGET_BATCH_TIME: Duration = Duration::from_millis(50);

/// Identifier of one benchmark within a group (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id composed of a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    best_per_iter: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly, recording the best per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: size one batch to roughly the target time.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters_per_batch =
            (TARGET_BATCH_TIME.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut best = Duration::MAX;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let per_iter = start.elapsed() / iters_per_batch;
            best = best.min(per_iter);
        }
        self.best_per_iter = best;
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        best_per_iter: Duration::ZERO,
    };
    f(&mut bencher);
    println!("bench: {label:<50} {:>12.3?}/iter", bencher.best_per_iter);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Override the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Override the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Finish the group (no-op; results are printed as they complete).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
