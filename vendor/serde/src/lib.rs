//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the minimal surface the workspace relies on: the `Serialize`
//! and `Deserialize` marker traits (blanket-implemented for every type)
//! and the derive macros re-exported from the sibling `serde_derive`
//! stand-in (which emit nothing, because the blanket impls already cover
//! every type). No code in the workspace currently serialises values —
//! the derives only declare intent — so this is behaviour-preserving.
//! Pointing the path dependencies at the real `serde` restores full
//! serialisation support without any source change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (blanket-implemented).
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}
