//! Offline stand-in for `serde_derive`.
//!
//! This workspace is built in an environment without access to crates.io,
//! so the real `serde_derive` cannot be fetched. The vendored `serde`
//! stand-in declares `Serialize`/`Deserialize` as marker traits with
//! blanket implementations, which means the derive macros have nothing to
//! generate: they accept the input and emit an empty token stream. Swapping
//! the `serde` path dependencies for the real crates restores full
//! serialisation support without touching any `#[derive(...)]` attribute.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`: the marker trait is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`: the marker trait is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
