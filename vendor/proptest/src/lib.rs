//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of proptest's API the workspace's tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` / `boxed`;
//! * range strategies (`0usize..10`, `1usize..=4`, `-2.0f64..2.0`, …),
//!   [`any`], [`Just`] and `prop::collection::vec`;
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support) and
//!   the `prop_assert*` assertion macros;
//! * [`prop_oneof!`] over boxed strategies.
//!
//! Values are generated from a deterministic SplitMix64 stream seeded from
//! the test name, so failures are reproducible run-to-run. There is no
//! shrinking: a failing case panics with the regular assertion message.
//! Swapping the path dependency for the real `proptest` restores shrinking
//! and persistence without touching any test source.

#![forbid(unsafe_code)]

/// Deterministic pseudo-random stream (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the stream from an arbitrary string (typically the test name).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable, platform-independent seed.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[0, bound)` (`bound` must be non-zero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A source of random values of one type.
///
/// Unlike real proptest there is no intermediate value tree (no
/// shrinking); a strategy simply produces a value from the deterministic
/// stream.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<V>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build a union from its arms (must be non-empty).
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.next_below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.next_below(span) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + rng.next_below(span) as $ty
                }
            }
        )*
    };
}

int_range_strategies!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategies {
    ($($ty:ty),*) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64 + 1;
                    (start as i128 + rng.next_below(span) as i128) as $ty
                }
            }
        )*
    };
}

signed_range_strategies!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy (mirrors `Arbitrary`).
pub trait Arbitrary {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($ty:ty),*) => {
        $(
            impl Arbitrary for $ty {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values: property tests here exercise
        // numerics, not IEEE edge cases.
        (rng.next_unit_f64() - 0.5) * 2e6
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type (`any::<u64>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths accepted by [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            Strategy::generate(self, rng)
        }
    }

    /// Strategy for `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector of `len` values drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strategy:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let ($($pat,)*) = ( $($crate::Strategy::generate(&($strategy), &mut rng),)* );
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest case {case} of {} failed in {}",
                            config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion (panics on failure, like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}
