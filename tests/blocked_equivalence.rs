//! The central correctness property of the reproduction: for every stencil
//! and every valid blocking configuration, AN5D's N.5D-blocked execution
//! produces exactly the same result as the naive reference execution.

use an5d::reference::run_reference;
use an5d::{
    analytic_counters, execute_plan_on, suite, BlockConfig, FrameworkScheme, Grid, GridDiff,
    GridInit, KernelPlan, Precision, StencilDef, StencilProblem,
};
use proptest::prelude::*;

fn check(def: &StencilDef, interior: &[usize], steps: usize, config: &BlockConfig, seed: u64) {
    let problem = StencilProblem::new(def.clone(), interior, steps).expect("valid problem");
    let plan = KernelPlan::build(def, &problem, config, FrameworkScheme::an5d()).expect("plan");
    let init = GridInit::Hash { seed };
    let reference = run_reference::<f64>(&problem, init);
    let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
    let blocked = execute_plan_on(&plan, &problem, initial);
    let diff = GridDiff::compute(&reference, &blocked.grid).expect("same shape");
    assert!(
        diff.is_exact(),
        "{} with {config}: max |diff| = {:.3e}",
        def.name(),
        diff.max_abs
    );
    // The analytic traffic model must agree exactly with the counted run.
    assert_eq!(
        analytic_counters(&plan, &problem),
        blocked.counters,
        "{} with {config}: analytic counters diverge from the functional run",
        def.name()
    );
}

#[test]
fn every_2d_benchmark_matches_the_reference_under_deep_temporal_blocking() {
    for def in suite::all_benchmarks()
        .into_iter()
        .filter(|d| d.ndim() == 2)
    {
        let bt = if def.radius() >= 3 { 2 } else { 4 };
        let bs = 16 + 2 * bt * def.radius();
        let config = BlockConfig::new(bt, &[bs], Some(16), Precision::Double).unwrap();
        check(&def, &[30, 26], 2 * bt + 1, &config, 7);
    }
}

#[test]
fn every_3d_benchmark_matches_the_reference() {
    for def in suite::all_benchmarks()
        .into_iter()
        .filter(|d| d.ndim() == 3)
    {
        let bt = if def.radius() >= 2 { 1 } else { 2 };
        let bs = 6 + 2 * bt * def.radius();
        let config = BlockConfig::new(bt, &[bs, bs], None, Precision::Double).unwrap();
        check(&def, &[10, 9, 8], 2 * bt + 1, &config, 11);
    }
}

#[test]
fn stencilgen_scheme_produces_the_same_values_as_an5d() {
    // The register/shared-memory scheme changes resource usage, never the
    // computed values: both schemes must match the reference.
    let def = suite::j2d9pt();
    let problem = StencilProblem::new(def.clone(), &[24, 24], 5).unwrap();
    let config = BlockConfig::new(2, &[20], None, Precision::Double).unwrap();
    let init = GridInit::Hash { seed: 3 };
    let reference = run_reference::<f64>(&problem, init);
    for scheme in [FrameworkScheme::an5d(), FrameworkScheme::stencilgen()] {
        let plan = KernelPlan::build(&def, &problem, &config, scheme).unwrap();
        let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
        let run = execute_plan_on(&plan, &problem, initial);
        assert!(GridDiff::compute(&reference, &run.grid).unwrap().is_exact());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised equivalence: random first/second-order star or box
    /// stencil, random grid extents, random temporal degree, random block
    /// size and optional streaming division.
    #[test]
    fn random_configurations_match_the_reference(
        star in any::<bool>(),
        radius in 1usize..=2,
        bt in 1usize..=4,
        extra_block in 0usize..12,
        stream_div in prop_oneof![Just(None), (4usize..12).prop_map(Some)],
        height in 12usize..28,
        width in 12usize..28,
        steps in 1usize..=9,
        seed in any::<u64>(),
    ) {
        let def = if star { suite::star2d(radius) } else { suite::box2d(radius) };
        let bs = 2 * bt * radius + 4 + extra_block;
        let config = BlockConfig::new(bt, &[bs], stream_div, Precision::Double).unwrap();
        check(&def, &[height, width], steps, &config, seed);
    }
}
