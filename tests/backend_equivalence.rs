//! The backend-subsystem contract: every execution backend produces
//! bit-identical `f64` grids and identical counters to the naive
//! reference executor and to the serial backend, across suite stencils
//! and thread counts — and the plan cache answers repeated keys with the
//! identical plan.

use an5d::reference::run_reference;
use an5d::{
    create_backend, BatchDriver, BatchJob, BlockConfig, ExecutionBackend, FrameworkScheme, Grid,
    GridDiff, GridInit, KernelPlan, ParallelCpuBackend, PlanCache, Precision, SerialBackend,
    StencilDef, StencilProblem,
};
use std::sync::Arc;

/// Representative suite slice: 2D star, 2D box (non-associative path) and
/// a 3D star with streaming division.
fn workloads() -> Vec<(StencilDef, Vec<usize>, usize, BlockConfig)> {
    use an5d::suite;
    vec![
        (
            suite::j2d5pt(),
            vec![28, 26],
            7,
            BlockConfig::new(3, &[12], Some(12), Precision::Double).unwrap(),
        ),
        (
            suite::box2d(1),
            vec![20, 24],
            5,
            BlockConfig::new(2, &[10], None, Precision::Double).unwrap(),
        ),
        (
            suite::star3d(1),
            vec![12, 10, 14],
            5,
            BlockConfig::new(2, &[8, 10], Some(6), Precision::Double).unwrap(),
        ),
    ]
}

#[test]
fn parallel_backend_is_bit_identical_to_reference_and_serial() {
    for (def, interior, steps, config) in workloads() {
        let problem = StencilProblem::new(def.clone(), &interior, steps).unwrap();
        let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
        let init = GridInit::Hash { seed: 2020 };
        let reference = run_reference::<f64>(&problem, init);
        let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);

        let serial = SerialBackend.execute_f64(&plan, &problem, initial.clone());
        let diff = GridDiff::compute(&reference, &serial.grid).unwrap();
        assert!(
            diff.is_exact(),
            "{}: serial diverged from reference",
            def.name()
        );

        for threads in [2usize, 5] {
            let parallel =
                ParallelCpuBackend::new(threads).execute_f64(&plan, &problem, initial.clone());
            assert_eq!(
                serial.grid,
                parallel.grid,
                "{}: parallel[{threads}] grid differs from serial",
                def.name()
            );
            let diff = GridDiff::compute(&reference, &parallel.grid).unwrap();
            assert!(
                diff.is_exact(),
                "{}: parallel[{threads}] diverged from reference (max {:.3e})",
                def.name(),
                diff.max_abs
            );
            assert_eq!(
                serial.counters,
                parallel.counters,
                "{}: parallel[{threads}] counters differ",
                def.name()
            );
        }
    }
}

#[test]
fn registry_backends_agree_through_the_facade() {
    // The same verification run through An5d must match regardless of the
    // backend the pipeline is wired to.
    let an5d = an5d::An5d::benchmark("j2d9pt").unwrap();
    let problem = an5d.problem(&[24, 22], 5).unwrap();
    let config = BlockConfig::new(2, &[14], None, Precision::Double).unwrap();
    for spec in ["serial", "parallel", "parallel:3"] {
        let backend = create_backend(spec).unwrap();
        let report = an5d
            .clone()
            .with_backend(backend)
            .verify(&problem, &config)
            .unwrap();
        assert!(report.matches_reference, "{spec}: diverged");
        assert_eq!(report.max_abs_diff, 0.0, "{spec}: not bit-identical");
    }
}

#[test]
fn plan_cache_hits_on_repeated_keys_with_identical_plans() {
    let cache = PlanCache::new(16);
    let (def, interior, steps, config) = workloads().remove(0);
    let problem = StencilProblem::new(def.clone(), &interior, steps).unwrap();

    let first = cache
        .get_or_build(&def, &problem, &config, FrameworkScheme::an5d())
        .unwrap();
    for _ in 0..3 {
        let again = cache
            .get_or_build(&def, &problem, &config, FrameworkScheme::an5d())
            .unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "hit must return the cached plan"
        );
        assert_eq!(*first, *again);
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.entries, 1);
}

#[test]
fn batch_driver_runs_a_suite_identically_on_both_backends() {
    let jobs: Vec<BatchJob> = workloads()
        .into_iter()
        .map(|(def, interior, steps, config)| BatchJob::new(def, &interior, steps, config))
        .collect();
    let serial = BatchDriver::new(Arc::new(SerialBackend)).run(&jobs);
    let parallel = BatchDriver::new(Arc::new(ParallelCpuBackend::new(4)))
        .with_workers(2)
        .run(&jobs);
    assert_eq!(serial.len(), jobs.len());
    for (a, b) in serial.iter().zip(&parallel) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.name, b.name);
        assert_eq!(a.checksum, b.checksum, "{}", a.name);
        assert_eq!(a.counters, b.counters, "{}", a.name);
    }
}
