//! The backend-subsystem contract: every execution backend produces
//! bit-identical `f64` grids and identical counters to the naive
//! reference executor and to the serial backend, across suite stencils
//! and thread counts — and the plan cache answers repeated keys with the
//! identical plan.

use an5d::reference::run_reference;
use an5d::{
    create_backend, BatchDriver, BatchJob, BlockConfig, ExecutionBackend, FrameworkScheme, Grid,
    GridDiff, GridInit, KernelPlan, ParallelCpuBackend, PlanCache, Precision, SerialBackend,
    StencilDef, StencilProblem, VectorCpuBackend,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Representative suite slice: 2D star, 2D box (non-associative path) and
/// a 3D star with streaming division.
fn workloads() -> Vec<(StencilDef, Vec<usize>, usize, BlockConfig)> {
    use an5d::suite;
    vec![
        (
            suite::j2d5pt(),
            vec![28, 26],
            7,
            BlockConfig::new(3, &[12], Some(12), Precision::Double).unwrap(),
        ),
        (
            suite::box2d(1),
            vec![20, 24],
            5,
            BlockConfig::new(2, &[10], None, Precision::Double).unwrap(),
        ),
        (
            suite::star3d(1),
            vec![12, 10, 14],
            5,
            BlockConfig::new(2, &[8, 10], Some(6), Precision::Double).unwrap(),
        ),
    ]
}

#[test]
fn parallel_backend_is_bit_identical_to_reference_and_serial() {
    for (def, interior, steps, config) in workloads() {
        let problem = StencilProblem::new(def.clone(), &interior, steps).unwrap();
        let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
        let init = GridInit::Hash { seed: 2020 };
        let reference = run_reference::<f64>(&problem, init);
        let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);

        let serial = SerialBackend.execute_f64(&plan, &problem, initial.clone());
        let diff = GridDiff::compute(&reference, &serial.grid).unwrap();
        assert!(
            diff.is_exact(),
            "{}: serial diverged from reference",
            def.name()
        );

        for threads in [2usize, 5] {
            let parallel =
                ParallelCpuBackend::new(threads).execute_f64(&plan, &problem, initial.clone());
            assert_eq!(
                serial.grid,
                parallel.grid,
                "{}: parallel[{threads}] grid differs from serial",
                def.name()
            );
            let diff = GridDiff::compute(&reference, &parallel.grid).unwrap();
            assert!(
                diff.is_exact(),
                "{}: parallel[{threads}] diverged from reference (max {:.3e})",
                def.name(),
                diff.max_abs
            );
            assert_eq!(
                serial.counters,
                parallel.counters,
                "{}: parallel[{threads}] counters differ",
                def.name()
            );
        }
    }
}

#[test]
fn vector_backend_is_bit_identical_to_reference_and_serial() {
    for (def, interior, steps, config) in workloads() {
        let problem = StencilProblem::new(def.clone(), &interior, steps).unwrap();
        let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
        let init = GridInit::Hash { seed: 2020 };
        let reference = run_reference::<f64>(&problem, init);
        let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
        let initial32 = Grid::<f32>::from_init(&problem.grid_shape(), init);

        let serial = SerialBackend.execute_f64(&plan, &problem, initial.clone());
        let serial32 = SerialBackend.execute_f32(&plan, &problem, initial32.clone());
        for threads in [1usize, 2, 5] {
            let vector =
                VectorCpuBackend::new(threads).execute_f64(&plan, &problem, initial.clone());
            assert_eq!(
                serial.grid,
                vector.grid,
                "{}: vector[{threads}] f64 grid differs from serial",
                def.name()
            );
            let diff = GridDiff::compute(&reference, &vector.grid).unwrap();
            assert!(
                diff.is_exact(),
                "{}: vector[{threads}] diverged from reference (max {:.3e})",
                def.name(),
                diff.max_abs
            );
            assert_eq!(
                serial.counters,
                vector.counters,
                "{}: vector[{threads}] counters differ",
                def.name()
            );
            let vector32 =
                VectorCpuBackend::new(threads).execute_f32(&plan, &problem, initial32.clone());
            assert_eq!(
                serial32.grid,
                vector32.grid,
                "{}: vector[{threads}] f32 grid differs from serial",
                def.name()
            );
            assert_eq!(
                serial32.counters,
                vector32.counters,
                "{}: vector[{threads}] f32 counters differ",
                def.name()
            );
        }
    }
}

#[test]
fn vector_backend_matches_serial_for_tuned_configs_on_every_registry_device() {
    // Each registry profile tunes to a different winning configuration;
    // whatever geometry a device's tuner picks, the vector backend must
    // execute it bit-for-bit like the serial backend (both precisions).
    use an5d::{SearchSpace, Tuner};
    let def = an5d::suite::star2d(1);
    let problem = StencilProblem::new(def.clone(), &[40, 36], 6).unwrap();
    let registry = an5d::standard_registry();
    assert!(registry.len() >= 4, "expected the four standard profiles");
    for (id, device) in registry.devices() {
        for precision in [Precision::Single, Precision::Double] {
            let space = SearchSpace::quick(2, precision);
            let result = Tuner::new(device.clone(), precision)
                .tune(&def, &problem, &space)
                .unwrap();
            let config = result.best.config.clone();
            let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
            let init = GridInit::Hash { seed: 9 };
            match precision {
                Precision::Single => {
                    let initial = Grid::<f32>::from_init(&problem.grid_shape(), init);
                    let serial = SerialBackend.execute_f32(&plan, &problem, initial.clone());
                    let vector = VectorCpuBackend::new(3).execute_f32(&plan, &problem, initial);
                    assert_eq!(serial.grid, vector.grid, "{id}: f32 grid with {config}");
                    assert_eq!(serial.counters, vector.counters, "{id}: f32 counters");
                }
                Precision::Double => {
                    let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
                    let serial = SerialBackend.execute_f64(&plan, &problem, initial.clone());
                    let vector = VectorCpuBackend::new(3).execute_f64(&plan, &problem, initial);
                    assert_eq!(serial.grid, vector.grid, "{id}: f64 grid with {config}");
                    assert_eq!(serial.counters, vector.counters, "{id}: f64 counters");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Randomised vector-vs-serial equivalence over odd tile/halo
    /// geometries: random star/box stencil and radius, random temporal
    /// degree, deliberately odd-capable block sizes, optional streaming
    /// division, random thread counts and both precisions.
    #[test]
    fn vector_backend_matches_serial_on_random_odd_geometries(
        star in any::<bool>(),
        radius in 1usize..=2,
        bt in 1usize..=3,
        extra_block in 0usize..9,
        stream_div in prop_oneof![Just(None), (5usize..13).prop_map(Some)],
        height in 13usize..29,
        width in 11usize..27,
        steps in 1usize..=7,
        threads in 1usize..=6,
        double in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use an5d::suite;
        let def = if star { suite::star2d(radius) } else { suite::box2d(radius) };
        // Base of 3 over the halo keeps many drawn sizes odd.
        let bs = 2 * bt * radius + 3 + extra_block;
        let precision = if double { Precision::Double } else { Precision::Single };
        let config = BlockConfig::new(bt, &[bs], stream_div, precision).unwrap();
        let problem = StencilProblem::new(def.clone(), &[height, width], steps).unwrap();
        let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
        let init = GridInit::Hash { seed };
        if double {
            let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
            let serial = SerialBackend.execute_f64(&plan, &problem, initial.clone());
            let vector = VectorCpuBackend::new(threads).execute_f64(&plan, &problem, initial);
            prop_assert_eq!(&serial.grid, &vector.grid, "{} with {}: f64 grid", def.name(), config);
            prop_assert_eq!(serial.counters, vector.counters, "{} with {}: f64 counters", def.name(), config);
        } else {
            let initial = Grid::<f32>::from_init(&problem.grid_shape(), init);
            let serial = SerialBackend.execute_f32(&plan, &problem, initial.clone());
            let vector = VectorCpuBackend::new(threads).execute_f32(&plan, &problem, initial);
            prop_assert_eq!(&serial.grid, &vector.grid, "{} with {}: f32 grid", def.name(), config);
            prop_assert_eq!(serial.counters, vector.counters, "{} with {}: f32 counters", def.name(), config);
        }
    }

    /// The 3D streaming path gets its own smaller randomised sweep: odd
    /// interiors and block faces exercise the ragged final tiles in every
    /// spatial dimension plus the streaming division.
    #[test]
    fn vector_backend_matches_serial_on_random_3d_geometries(
        bt in 1usize..=2,
        extra_y in 0usize..5,
        extra_x in 0usize..5,
        stream_div in prop_oneof![Just(None), (4usize..9).prop_map(Some)],
        depth in 7usize..13,
        height in 7usize..12,
        width in 8usize..15,
        steps in 1usize..=5,
        threads in 2usize..=5,
        seed in any::<u64>(),
    ) {
        use an5d::suite;
        let def = suite::star3d(1);
        let bs_y = 2 * bt + 3 + extra_y;
        let bs_x = 2 * bt + 3 + extra_x;
        let config =
            BlockConfig::new(bt, &[bs_y, bs_x], stream_div, Precision::Double).unwrap();
        let problem =
            StencilProblem::new(def.clone(), &[depth, height, width], steps).unwrap();
        let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
        let init = GridInit::Hash { seed };
        let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
        let serial = SerialBackend.execute_f64(&plan, &problem, initial.clone());
        let vector = VectorCpuBackend::new(threads).execute_f64(&plan, &problem, initial);
        prop_assert_eq!(&serial.grid, &vector.grid, "star3d1r with {}: grid", config);
        prop_assert_eq!(serial.counters, vector.counters, "star3d1r with {}: counters", config);
    }
}

#[test]
fn registry_backends_agree_through_the_facade() {
    // The same verification run through An5d must match regardless of the
    // backend the pipeline is wired to.
    let an5d = an5d::An5d::benchmark("j2d9pt").unwrap();
    let problem = an5d.problem(&[24, 22], 5).unwrap();
    let config = BlockConfig::new(2, &[14], None, Precision::Double).unwrap();
    for spec in ["serial", "parallel", "parallel:3", "vector", "vector:3"] {
        let backend = create_backend(spec).unwrap();
        let report = an5d
            .clone()
            .with_backend(backend)
            .verify(&problem, &config)
            .unwrap();
        assert!(report.matches_reference, "{spec}: diverged");
        assert_eq!(report.max_abs_diff, 0.0, "{spec}: not bit-identical");
    }
}

#[test]
fn plan_cache_hits_on_repeated_keys_with_identical_plans() {
    let cache = PlanCache::new(16);
    let (def, interior, steps, config) = workloads().remove(0);
    let problem = StencilProblem::new(def.clone(), &interior, steps).unwrap();

    let first = cache
        .get_or_build(&def, &problem, &config, FrameworkScheme::an5d())
        .unwrap();
    for _ in 0..3 {
        let again = cache
            .get_or_build(&def, &problem, &config, FrameworkScheme::an5d())
            .unwrap();
        assert!(
            Arc::ptr_eq(&first, &again),
            "hit must return the cached plan"
        );
        assert_eq!(*first, *again);
    }
    let stats = cache.stats();
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 3);
    assert_eq!(stats.entries, 1);
}

#[test]
fn batch_driver_runs_a_suite_identically_on_both_backends() {
    let jobs: Vec<BatchJob> = workloads()
        .into_iter()
        .map(|(def, interior, steps, config)| BatchJob::new(def, &interior, steps, config))
        .collect();
    let serial = BatchDriver::new(Arc::new(SerialBackend)).run(&jobs);
    let parallel = BatchDriver::new(Arc::new(ParallelCpuBackend::new(4)))
        .with_workers(2)
        .run(&jobs);
    assert_eq!(serial.len(), jobs.len());
    for (a, b) in serial.iter().zip(&parallel) {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.name, b.name);
        assert_eq!(a.checksum, b.checksum, "{}", a.name);
        assert_eq!(a.counters, b.counters, "{}", a.name);
    }
}

#[test]
fn batch_driver_is_deterministic_across_pool_concurrency_caps() {
    // The driver fans jobs onto the shared persistent pool; whatever the
    // concurrency cap (1 = inline on the caller), outcomes must be
    // bit-identical in input order.
    let jobs: Vec<BatchJob> = workloads()
        .into_iter()
        .map(|(def, interior, steps, config)| BatchJob::new(def, &interior, steps, config))
        .collect();
    let baseline = BatchDriver::new(Arc::new(SerialBackend))
        .with_workers(1)
        .run(&jobs);
    for workers in [2usize, 3, 8] {
        let again = BatchDriver::new(Arc::new(SerialBackend))
            .with_workers(workers)
            .run(&jobs);
        for (a, b) in baseline.iter().zip(&again) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.checksum, b.checksum, "workers={workers} {}", a.name);
            assert_eq!(a.counters, b.counters, "workers={workers} {}", a.name);
        }
    }
}

/// A from-scratch serial re-implementation of the Section 6.3 tuning
/// flow: enumerate → plan → register-prune → rank by model → measure the
/// top-5 under every register cap → pick the best. The pool-backed
/// streaming tuner must reproduce it bit for bit.
fn serial_tune_reference(
    def: &an5d::StencilDef,
    problem: &StencilProblem,
    device: &an5d::GpuDevice,
    space: &an5d::SearchSpace,
) -> Vec<an5d::TunedCandidate> {
    use an5d::{measure, predict, RegisterCap};
    let mut ranked: Vec<(BlockConfig, KernelPlan, f64)> = Vec::new();
    for config in space.iter() {
        let Ok(plan) = KernelPlan::build(def, problem, &config, FrameworkScheme::an5d()) else {
            continue;
        };
        let regs = plan.resources().registers_per_thread;
        if regs > device.max_registers_per_thread
            || regs * plan.geometry().nthr > device.registers_per_sm
        {
            continue;
        }
        let score = predict(&plan, problem, device).gflops;
        ranked.push((config, plan, score));
    }
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut measured: Vec<an5d::TunedCandidate> = Vec::new();
    for (config, plan, predicted_gflops) in ranked.into_iter().take(5) {
        let mut best: Option<an5d::TunedCandidate> = None;
        for cap in RegisterCap::tuning_candidates() {
            let Ok(m) = measure(&plan, problem, device, cap) else {
                continue;
            };
            let candidate = an5d::TunedCandidate {
                config: config.clone(),
                register_cap: cap,
                predicted_gflops,
                measured_gflops: m.gflops,
                measured_gcells: m.gcells,
                seconds: m.seconds,
            };
            if best
                .as_ref()
                .is_none_or(|b| candidate.measured_gflops > b.measured_gflops)
            {
                best = Some(candidate);
            }
        }
        measured.extend(best);
    }
    measured.sort_by(|a, b| b.measured_gflops.total_cmp(&a.measured_gflops));
    measured
}

#[test]
fn streaming_pool_backed_tuner_matches_a_serial_reference_sweep() {
    use an5d::{GpuDevice, SearchSpace, Tuner};
    let device = GpuDevice::tesla_v100();
    for (def, space) in [
        (
            an5d::suite::star2d(1),
            SearchSpace::paper(2, Precision::Single),
        ),
        (
            an5d::suite::star3d(1),
            SearchSpace::quick(3, Precision::Single),
        ),
    ] {
        let interior: Vec<usize> = match def.ndim() {
            2 => vec![2048, 2048],
            _ => vec![128, 128, 128],
        };
        let problem = StencilProblem::new(def.clone(), &interior, 64).unwrap();
        let expected = serial_tune_reference(&def, &problem, &device, &space);
        let result = Tuner::new(device.clone(), Precision::Single)
            .tune(&def, &problem, &space)
            .unwrap();
        assert_eq!(
            result.measured,
            expected,
            "{}: pool-backed tuner diverged from the serial reference",
            def.name()
        );
        assert_eq!(result.best, expected[0]);
    }
}

#[test]
fn warmed_cache_serves_the_same_plans_it_would_build_on_demand() {
    use an5d::WarmRequest;
    let scheme = FrameworkScheme::an5d();
    let requests: Vec<WarmRequest> = workloads()
        .into_iter()
        .map(|(def, interior, steps, config)| {
            let problem = StencilProblem::new(def.clone(), &interior, steps).unwrap();
            WarmRequest::new(def, problem, config, scheme)
        })
        .collect();

    let warmed = PlanCache::new(32);
    let stats = warmed.warm(&requests);
    assert_eq!(stats.built, requests.len());
    assert_eq!(stats.failed, 0);

    let cold = PlanCache::new(32);
    for request in &requests {
        let from_warm = warmed
            .get_or_build(&request.def, &request.problem, &request.config, scheme)
            .unwrap();
        let from_cold = cold
            .get_or_build(&request.def, &request.problem, &request.config, scheme)
            .unwrap();
        assert_eq!(*from_warm, *from_cold, "{}", request.def.name());
    }
    // Every post-warm lookup was a hit.
    assert_eq!(warmed.stats().misses, requests.len() as u64);
    assert_eq!(warmed.stats().hits, requests.len() as u64);
}
