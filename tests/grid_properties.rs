//! Property-based tests of the grid substrate.

use an5d::{Grid, GridDiff, GridInit};
use proptest::prelude::*;

fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        prop::collection::vec(2usize..20, 2),
        prop::collection::vec(2usize..10, 3),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flatten_is_a_bijection_over_all_indices(shape in small_shape()) {
        let grid = Grid::<f64>::zeros(&shape);
        let mut seen = std::collections::BTreeSet::new();
        for idx in grid.interior_indices(0) {
            let flat = grid.flatten(&idx);
            prop_assert!(flat < grid.len());
            prop_assert!(seen.insert(flat), "duplicate flat index {flat} for {idx:?}");
        }
        prop_assert_eq!(seen.len(), grid.len());
    }

    #[test]
    fn interior_count_matches_formula(shape in small_shape(), radius in 0usize..3) {
        let grid = Grid::<f64>::zeros(&shape);
        let expected: usize = shape
            .iter()
            .map(|&e| e.saturating_sub(2 * radius))
            .product();
        prop_assert_eq!(grid.interior_indices(radius).len(), expected);
        prop_assert_eq!(grid.interior_len(radius), expected);
    }

    #[test]
    fn signed_access_agrees_with_unsigned_access(shape in small_shape(), seed in any::<u64>()) {
        let grid = Grid::<f64>::from_init(&shape, GridInit::Hash { seed });
        for idx in grid.interior_indices(0) {
            let signed: Vec<isize> = idx.iter().map(|&i| i as isize).collect();
            prop_assert_eq!(grid.at(&signed), Some(grid.get(&idx)));
        }
        // Any index with a negative component is outside.
        let mut outside: Vec<isize> = vec![0; shape.len()];
        outside[0] = -1;
        prop_assert_eq!(grid.at(&outside), None);
    }

    #[test]
    fn hash_init_is_reproducible_and_diff_detects_changes(
        shape in small_shape(),
        seed in any::<u64>(),
        delta in 0.001f64..10.0,
    ) {
        let a = Grid::<f64>::from_init(&shape, GridInit::Hash { seed });
        let b = Grid::<f64>::from_init(&shape, GridInit::Hash { seed });
        prop_assert!(GridDiff::compute(&a, &b).unwrap().is_exact());

        let mut c = b.clone();
        let idx: Vec<usize> = shape.iter().map(|&e| e / 2).collect();
        c.set(&idx, c.get(&idx) + delta);
        let diff = GridDiff::compute(&a, &c).unwrap();
        prop_assert!(!diff.is_exact());
        prop_assert!((diff.max_abs - delta).abs() < 1e-12);
    }

    #[test]
    fn to_f64_preserves_f32_values(shape in small_shape(), seed in any::<u64>()) {
        let single = Grid::<f32>::from_init(&shape, GridInit::Hash { seed });
        let as_double = single.to_f64();
        for idx in single.interior_indices(0) {
            prop_assert_eq!(as_double.get(&idx), f64::from(single.get(&idx)));
        }
    }
}
