//! Cross-crate integration tests of the full AN5D pipeline: C input →
//! detection → planning → verification → model/measurement → CUDA output.

use an5d::{
    emit_c_source, measure_best_cap, parse_stencil, predict, suite, An5d, BlockConfig,
    FrameworkScheme, GpuDevice, KernelPlan, Precision, SearchSpace, StencilProblem,
};

#[test]
fn c_round_trip_and_verification_for_representative_benchmarks() {
    // One representative of every stencil family keeps this test quick
    // while exercising the whole pipeline for each shape class.
    for name in [
        "star2d2r",
        "box2d1r",
        "j2d9pt",
        "gradient2d",
        "star3d1r",
        "j3d27pt",
    ] {
        let def = suite::by_name(name).expect("known benchmark");
        // Emit canonical C and re-detect it.
        let source = emit_c_source(&def, "A");
        let detected = parse_stencil(&source, name).expect("re-detection succeeds");
        assert_eq!(detected.def.radius(), def.radius(), "{name}");
        assert_eq!(
            detected.def.flops_per_cell(),
            def.flops_per_cell(),
            "{name}"
        );

        // Verify the blocked schedule of the re-detected stencil.
        let an5d = An5d::from_def(detected.def);
        let (interior, bs): (Vec<usize>, Vec<usize>) = if def.ndim() == 2 {
            (vec![26, 24], vec![8 + 4 * def.radius()])
        } else {
            (
                vec![10, 9, 8],
                vec![6 + 2 * def.radius(), 6 + 2 * def.radius()],
            )
        };
        let problem = an5d.problem(&interior, 4).unwrap();
        let config = BlockConfig::new(1, &bs, None, Precision::Double).unwrap();
        let report = an5d.verify(&problem, &config).unwrap();
        assert!(
            report.matches_reference,
            "{name}: {:?}",
            report.max_abs_diff
        );
    }
}

#[test]
fn generated_cuda_reflects_the_tuned_configuration() {
    let an5d = An5d::benchmark("j2d5pt").unwrap();
    let device = GpuDevice::tesla_v100();
    let problem = an5d.problem(&[2048, 2048], 100).unwrap();
    let space = SearchSpace::quick(2, Precision::Single);
    let tuned = an5d.tune(&problem, &device, &space).unwrap();
    let cuda = an5d.generate_cuda(&problem, &tuned.best.config).unwrap();

    let bt = tuned.best.config.bt();
    assert!(cuda
        .kernel_source
        .contains(&format!("#define AN5D_BT {bt}")));
    assert_eq!(
        cuda.kernel_source.matches("#define CALC").count(),
        bt,
        "one CALC macro per combined time-step"
    );
    assert!(cuda.host_source.contains(&format!("t += {bt}")));
}

#[test]
fn paper_headline_claim_holds_on_v100() {
    // AN5D (tuned) beats the STENCILGEN-style scheme at the same problem
    // scale on V100, and the Section 5 model brackets the measurement from
    // above.
    let def = suite::j2d5pt();
    let problem = StencilProblem::paper_scale(def.clone());
    let device = GpuDevice::tesla_v100();

    let an5d_config = BlockConfig::new(10, &[256], Some(256), Precision::Single).unwrap();
    let an5d_plan =
        KernelPlan::build(&def, &problem, &an5d_config, FrameworkScheme::an5d()).unwrap();
    let an5d_measured = measure_best_cap(&an5d_plan, &problem, &device).unwrap();
    let an5d_model = predict(&an5d_plan, &problem, &device);

    let sg_config = BlockConfig::sconf(2, Precision::Single);
    let sg_plan =
        KernelPlan::build(&def, &problem, &sg_config, FrameworkScheme::stencilgen()).unwrap();
    let sg_measured = measure_best_cap(&sg_plan, &problem, &device).unwrap();

    assert!(
        an5d_measured.gflops > sg_measured.gflops,
        "AN5D {} vs STENCILGEN {}",
        an5d_measured.gflops,
        sg_measured.gflops
    );
    assert!(an5d_model.gflops > an5d_measured.gflops);
    let accuracy = an5d_measured.gflops / an5d_model.gflops;
    assert!(
        accuracy > 0.25 && accuracy < 0.95,
        "model accuracy {accuracy}"
    );
}

#[test]
fn deep_temporal_blocking_pays_off_for_first_order_2d_stencils() {
    // Fig. 8's qualitative claim at a reduced problem size: bT = 8 clearly
    // beats bT = 1 for a first-order 2D stencil.
    let def = suite::star2d(1);
    let problem = StencilProblem::new(def.clone(), &[8192, 8192], 400).unwrap();
    let device = GpuDevice::tesla_v100();
    let gflops_at = |bt: usize| {
        let config = BlockConfig::new(bt, &[256], Some(256), Precision::Single).unwrap();
        let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d()).unwrap();
        measure_best_cap(&plan, &problem, &device).unwrap().gflops
    };
    let low = gflops_at(1);
    let high = gflops_at(8);
    assert!(high > 1.5 * low, "bT=8 {high} vs bT=1 {low}");
}
