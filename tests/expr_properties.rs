//! Property-based tests of the expression layer: linear-form extraction,
//! FLOP counting and shape classification on randomly generated stencils.

use an5d::{Expr, Offset, StencilShapeClass};
use proptest::prelude::*;

/// Strategy: a random 2D star stencil expression of radius 1..=4 with
/// random (non-zero) coefficients.
fn random_star_2d() -> impl Strategy<Value = (Expr, usize)> {
    (1usize..=4).prop_flat_map(|radius| {
        let coeff_count = 4 * radius + 1;
        prop::collection::vec(-2.0f64..2.0, coeff_count).prop_map(move |coeffs| {
            let mut terms = vec![Expr::constant(coeffs[0] + 0.25) * Expr::cell(&[0, 0])];
            let mut k = 1;
            for d in 1..=radius as i32 {
                for off in [[d, 0], [-d, 0], [0, d], [0, -d]] {
                    terms.push(Expr::constant(coeffs[k] + 0.1) * Expr::cell(&off));
                    k += 1;
                }
            }
            (Expr::sum(terms), radius)
        })
    })
}

/// Strategy: a random dense 2D box stencil of radius 1..=2.
fn random_box_2d() -> impl Strategy<Value = (Expr, usize)> {
    (1usize..=2).prop_flat_map(|radius| {
        let side = 2 * radius + 1;
        prop::collection::vec(0.01f64..1.0, side * side).prop_map(move |coeffs| {
            let mut terms = Vec::new();
            let mut k = 0;
            for i in -(radius as i32)..=radius as i32 {
                for j in -(radius as i32)..=radius as i32 {
                    terms.push(Expr::constant(coeffs[k]) * Expr::cell(&[i, j]));
                    k += 1;
                }
            }
            (Expr::sum(terms), radius)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn star_stencils_classify_as_star_with_correct_radius((expr, radius) in random_star_2d()) {
        let info = expr.shape_info().unwrap();
        prop_assert_eq!(info.class, StencilShapeClass::Star);
        prop_assert_eq!(info.radius, radius);
        prop_assert_eq!(info.ndim, 2);
        prop_assert!(info.diagonal_access_free);
        prop_assert_eq!(info.tap_count(), 4 * radius + 1);
    }

    #[test]
    fn box_stencils_classify_as_box((expr, radius) in random_box_2d()) {
        let info = expr.shape_info().unwrap();
        prop_assert_eq!(info.class, StencilShapeClass::Box);
        prop_assert_eq!(info.radius, radius);
        prop_assert_eq!(info.tap_count(), (2 * radius + 1).pow(2));
    }

    #[test]
    fn linear_form_evaluates_identically_to_the_expression(
        (expr, _) in random_star_2d(),
        sample in prop::collection::vec(-5.0f64..5.0, 32),
    ) {
        let form = expr.as_linear().expect("weighted sums are associative");
        let resolve = |o: Offset| {
            let idx = ((o.component(0) + 4) * 9 + (o.component(1) + 4)) as usize % sample.len();
            sample[idx]
        };
        let direct = expr.eval(&resolve);
        let via_form = form.eval(&resolve);
        prop_assert!((direct - via_form).abs() <= 1e-9 * direct.abs().max(1.0));
    }

    #[test]
    fn flop_count_matches_table3_formula_for_synthetic_stencils(
        (expr, radius) in random_star_2d(),
    ) {
        // Table 3: star2d{x}r performs 8x + 1 FLOP per cell.
        prop_assert_eq!(expr.flop_count().total(), 8 * radius + 1);
        // The fast-math instruction mix performs the same number of FLOPs.
        prop_assert_eq!(expr.op_mix().flops(), 8 * radius + 1);
        prop_assert!(expr.op_mix().alu_efficiency() <= 1.0);
        prop_assert!(expr.op_mix().alu_efficiency() >= 0.5);
    }

    #[test]
    fn partial_sums_cover_every_term((expr, radius) in random_box_2d()) {
        let form = expr.as_linear().unwrap();
        let groups = form.partial_sums_by_plane();
        // One partial sum per source sub-plane.
        prop_assert_eq!(groups.len(), 2 * radius + 1);
        let total: usize = groups.values().map(Vec::len).sum();
        prop_assert_eq!(total, form.terms().len());
    }

    #[test]
    fn single_precision_eval_stays_close_to_double((expr, _) in random_star_2d(), seed in any::<u32>()) {
        let resolve64 = |o: Offset| f64::from(seed % 97) * 0.01 + 0.3 * f64::from(o.component(0)) - 0.2 * f64::from(o.component(1));
        let resolve32 = |o: Offset| resolve64(o) as f32;
        let d = expr.eval(&resolve64);
        let s = expr.eval_f32(&resolve32);
        prop_assert!((d - f64::from(s)).abs() < 1e-3 * d.abs().max(1.0));
    }
}
