//! Equivalence of cold-tuned and DB-warmed tuning results across the
//! whole device registry: persisting a `TuningResult` and reading it
//! back must change *nothing* — not the chosen configuration, not a
//! single `f64`, not the generated kernel name, not the executed grid.

use an5d::{
    kernel_name_for, An5d, BatchDriver, BatchJob, DeviceId, GridInit, PlanCache, Precision,
    SearchSpace, SerialBackend, TuneDb,
};
use std::sync::Arc;

struct TempDb(std::path::PathBuf);

impl Drop for TempDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
        let _ = std::fs::remove_file(self.0.with_extension("tmp"));
    }
}

fn temp_db(label: &str) -> TempDb {
    let path = std::env::temp_dir().join(format!(
        "an5d-equivalence-{label}-{}.db",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    TempDb(path)
}

#[test]
fn cold_and_db_warmed_results_are_bit_identical_across_the_registry() {
    let db_file = temp_db("registry");
    let registry = an5d::standard_registry();
    let an5d = An5d::benchmark("j2d5pt").unwrap();
    let problem = an5d.problem(&[512, 512], 50).unwrap();
    let space = SearchSpace::quick(2, Precision::Single);

    // Phase 1: tune cold on every registered device, persisting as we go.
    let mut cold = Vec::new();
    {
        let db = TuneDb::open(&db_file.0).unwrap();
        for (id, device) in registry.devices() {
            let outcome = an5d
                .tune_with_db(
                    &problem,
                    id,
                    device,
                    &space,
                    Arc::new(PlanCache::new(64)),
                    &db,
                    false,
                )
                .unwrap();
            assert!(!outcome.from_db, "{id}: first tune must run the search");
            cold.push((id.clone(), outcome.result));
        }
        assert_eq!(db.len(), registry.len(), "one record per device");
    }

    // Phase 2: a fresh handle (simulating a new process) must hand back
    // every result untouched.
    let db = TuneDb::open(&db_file.0).unwrap();
    assert_eq!(db.stats().recovered, registry.len());
    for (id, cold_result) in &cold {
        let device = registry.get(id).unwrap();
        let warmed = an5d
            .tune_with_db(
                &problem,
                id,
                device,
                &space,
                Arc::new(PlanCache::new(64)),
                &db,
                false,
            )
            .unwrap();
        assert!(warmed.from_db, "{id}: second process must hit the DB");
        assert_eq!(
            &warmed.result, cold_result,
            "{id}: every field (configs, caps, f64 scores) must survive the disk round-trip"
        );

        // The chosen configuration plans to the same kernel name…
        let cold_plan = an5d.plan(&problem, &cold_result.best.config).unwrap();
        let warm_plan = an5d.plan(&problem, &warmed.result.best.config).unwrap();
        assert_eq!(
            kernel_name_for(&cold_plan),
            kernel_name_for(&warm_plan),
            "{id}"
        );

        // …and executes to the identical grid (same tuned config, a
        // test-sized run).
        let execute = |config: &an5d::BlockConfig| {
            let job = BatchJob::new(an5d.def().clone(), &[256, 256], 4, config.clone())
                .with_init(GridInit::Hash { seed: 0x5EED });
            BatchDriver::new(Arc::new(SerialBackend))
                .run(&[job])
                .pop()
                .unwrap()
                .unwrap()
        };
        let cold_run = execute(&cold_result.best.config);
        let warm_run = execute(&warmed.result.best.config);
        assert_eq!(cold_run.checksum, warm_run.checksum, "{id}: grids differ");
        assert_eq!(cold_run.counters, warm_run.counters, "{id}");
    }

    // Distinct devices genuinely tuned to device-specific entries: the
    // stored keys differ even for the same stencil/problem/space.
    let v100_key = an5d.tune_key(&problem, &DeviceId::new("v100"), &space);
    let p100_key = an5d.tune_key(&problem, &DeviceId::new("p100"), &space);
    assert_ne!(v100_key, p100_key);
    assert!(db.get(&v100_key).is_some());
    assert!(db.get(&p100_key).is_some());
}

#[test]
fn the_db_never_leaks_results_across_lookup_axes() {
    let db_file = temp_db("axes");
    let db = TuneDb::open(&db_file.0).unwrap();
    let registry = an5d::standard_registry();
    let an5d = An5d::benchmark("j2d5pt").unwrap();
    let problem = an5d.problem(&[512, 512], 50).unwrap();
    let space = SearchSpace::quick(2, Precision::Single);
    let (id, device) = registry.resolve("v100").unwrap();

    an5d.tune_with_db(
        &problem,
        &id,
        device,
        &space,
        Arc::new(PlanCache::new(64)),
        &db,
        false,
    )
    .unwrap();

    // Same device, different problem → miss.
    let other_problem = an5d.problem(&[512, 512], 100).unwrap();
    assert!(db
        .get(&an5d.tune_key(&other_problem, &id, &space))
        .is_none());
    // Same problem, different device → miss.
    assert!(db
        .get(&an5d.tune_key(&problem, &DeviceId::new("a100"), &space))
        .is_none());
    // Same everything, different space → miss.
    let paper = SearchSpace::paper(2, Precision::Single);
    assert!(db.get(&an5d.tune_key(&problem, &id, &paper)).is_none());
    // A different stencil with the same problem shape → miss.
    let other = An5d::benchmark("j2d9pt").unwrap();
    let other_problem = other.problem(&[512, 512], 50).unwrap();
    assert!(db
        .get(&other.tune_key(&other_problem, &id, &space))
        .is_none());
    // The exact original key → hit.
    assert!(db.get(&an5d.tune_key(&problem, &id, &space)).is_some());
}
