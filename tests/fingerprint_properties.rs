//! Property-based tests of the canonical stencil fingerprint the
//! persisted tuning DB keys on: reordering the terms of a randomly
//! generated stencil never changes its fingerprint, while changing any
//! coefficient, offset or the name-independent structure does.

use an5d::{stencil_fingerprint, Expr, StencilDef};
use proptest::prelude::*;

/// Strategy: a random 2D star stencil as a list of (coefficient, offset)
/// terms.
fn random_terms() -> impl Strategy<Value = Vec<(f64, [i32; 2])>> {
    (1usize..=3).prop_flat_map(|radius| {
        let count = 4 * radius + 1;
        prop::collection::vec(0.05f64..4.0, count).prop_map(move |coeffs| {
            let mut terms = vec![(coeffs[0], [0, 0])];
            let mut k = 1;
            for d in 1..=radius as i32 {
                for off in [[d, 0], [-d, 0], [0, d], [0, -d]] {
                    terms.push((coeffs[k], off));
                    k += 1;
                }
            }
            terms
        })
    })
}

fn def_of(name: &str, terms: &[(f64, [i32; 2])]) -> StencilDef {
    let exprs = terms
        .iter()
        .map(|(c, o)| Expr::constant(*c) * Expr::cell(o))
        .collect();
    StencilDef::new(name, Expr::sum(exprs)).expect("weighted star stencils are valid")
}

/// Deterministic in-place shuffle (SplitMix64-driven Fisher–Yates).
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let j = ((z ^ (z >> 31)) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fingerprint_is_invariant_under_term_reordering_and_renaming(
        terms in random_terms(),
        seed in any::<u64>(),
    ) {
        let baseline = def_of("baseline", &terms);
        let mut reordered = terms.clone();
        shuffle(&mut reordered, seed);
        let permuted = def_of("permuted-and-renamed", &reordered);
        prop_assert_eq!(
            stencil_fingerprint(&baseline),
            stencil_fingerprint(&permuted),
            "field order and name must not affect the fingerprint"
        );
    }

    #[test]
    fn distinct_stencils_have_distinct_fingerprints(
        terms in random_terms(),
        bump_index in 0usize..32,
        bump in 0.125f64..2.0,
    ) {
        let baseline = def_of("s", &terms);

        // Perturb one coefficient: a different computation.
        let mut changed = terms.clone();
        let index = bump_index % changed.len();
        changed[index].0 += bump;
        let changed = def_of("s", &changed);
        prop_assert_ne!(
            stencil_fingerprint(&baseline),
            stencil_fingerprint(&changed),
            "a changed coefficient must change the fingerprint"
        );

        // Drop one non-centre term: a different access pattern.
        if terms.len() > 5 {
            let truncated = def_of("s", &terms[..terms.len() - 4]);
            prop_assert_ne!(
                stencil_fingerprint(&baseline),
                stencil_fingerprint(&truncated)
            );
        }
    }

    #[test]
    fn fingerprint_is_deterministic_across_rebuilds(terms in random_terms()) {
        let a = def_of("a", &terms);
        let b = def_of("a", &terms);
        prop_assert_eq!(stencil_fingerprint(&a), stencil_fingerprint(&b));
    }
}
