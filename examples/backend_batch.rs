//! Batch-execute a slice of the Table 3 suite across execution backends.
//!
//! Demonstrates the `an5d-backend` subsystem end to end: jobs fan out
//! across a bounded worker pool, plans come from the shared LRU plan
//! cache, and the same suite runs on the serial and the tile-parallel
//! backend with bit-identical checksums.
//!
//! Run with `cargo run --example backend_batch`.

use an5d::{create_backend, suite, BatchDriver, BatchJob, BlockConfig, PlanCache, Precision};
use std::sync::Arc;

fn jobs() -> Vec<BatchJob> {
    let c2d = |bt: usize, bs: usize| BlockConfig::new(bt, &[bs], None, Precision::Double).unwrap();
    let c3d =
        |bt: usize, bs: usize| BlockConfig::new(bt, &[bs, bs], None, Precision::Double).unwrap();
    vec![
        BatchJob::new(suite::j2d5pt(), &[64, 64], 8, c2d(4, 24)),
        BatchJob::new(suite::j2d9pt(), &[64, 64], 8, c2d(2, 24)),
        BatchJob::new(suite::box2d(1), &[48, 48], 6, c2d(2, 16)),
        BatchJob::new(suite::star3d(1), &[16, 16, 16], 4, c3d(2, 10)),
        // A repeat: its plan comes from the cache.
        BatchJob::new(suite::j2d5pt(), &[64, 64], 8, c2d(4, 24)),
    ]
}

fn main() {
    let cache = Arc::new(PlanCache::new(64));
    println!("suite batch on every registered backend:\n");
    let mut checksums: Vec<Vec<f64>> = Vec::new();
    for spec in ["serial", "parallel"] {
        let backend = create_backend(spec).expect("registered backend");
        let driver = BatchDriver::new(backend)
            .with_cache(Arc::clone(&cache))
            .with_workers(2);
        println!("backend = {}", driver.backend().describe());
        let mut sums = Vec::new();
        for result in driver.run(&jobs()) {
            match result {
                Ok(outcome) => {
                    println!(
                        "  {:<10} cache_hit={:<5} updates={:<9} checksum={:+.6e}  ({:?})",
                        outcome.name,
                        outcome.plan_cache_hit,
                        outcome.counters.cell_updates,
                        outcome.checksum,
                        outcome.elapsed,
                    );
                    sums.push(outcome.checksum);
                }
                Err(e) => println!("  {e}"),
            }
        }
        checksums.push(sums);
        println!();
    }
    assert_eq!(
        checksums[0], checksums[1],
        "backends must agree bit-for-bit"
    );
    let stats = cache.stats();
    println!(
        "shared plan cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries
    );
    println!("all backends produced identical checksums.");
}
