//! A single-stencil slice of Fig. 6: compare loop tiling, hybrid tiling,
//! STENCILGEN and AN5D on both evaluation GPUs.
//!
//! Run with `cargo run --release --example compare_frameworks [stencil]`
//! (default stencil: `j2d5pt`).

use an5d::{
    hybrid_measurement, loop_tiling_measurement, measure_best_cap, standard_registry,
    stencilgen_measurement, suite, An5dError, BlockConfig, FrameworkScheme, KernelPlan, Precision,
    SearchSpace, StencilProblem, Tuner,
};

fn main() -> Result<(), An5dError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "j2d5pt".to_string());
    let def = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}', falling back to j2d5pt");
        suite::j2d5pt()
    });
    let precision = Precision::Single;
    let problem = StencilProblem::paper_scale(def.clone());
    println!(
        "Framework comparison for {} at the paper's scale ({:?} interior, {} steps, float):\n",
        def,
        problem.interior(),
        problem.time_steps()
    );

    for device in standard_registry().paper_devices() {
        println!("{device}:");
        let report = |framework: &str, gflops: Option<f64>| match gflops {
            Some(v) => println!("  {framework:<22} {v:>9.0} GFLOP/s"),
            None => println!("  {framework:<22} {:>9}", "n/a"),
        };

        report(
            "Loop tiling",
            loop_tiling_measurement(&problem, &device, precision)
                .ok()
                .map(|r| r.gflops),
        );
        report(
            "Hybrid tiling",
            hybrid_measurement(&problem, &device, precision)
                .ok()
                .map(|r| r.gflops),
        );
        report(
            "STENCILGEN",
            stencilgen_measurement(&problem, &device, precision)
                .ok()
                .map(|r| r.gflops),
        );

        // AN5D with STENCILGEN's configuration (Sconf).
        let sconf_config = BlockConfig::sconf(def.ndim(), precision);
        let sconf_scheme = if def.ndim() == 2 {
            FrameworkScheme::an5d_no_associative()
        } else {
            FrameworkScheme::an5d()
        };
        let sconf = KernelPlan::build(&def, &problem, &sconf_config, sconf_scheme)
            .ok()
            .and_then(|plan| measure_best_cap(&plan, &problem, &device).ok())
            .map(|m| m.gflops);
        report("AN5D (Sconf)", sconf);

        // AN5D tuned with the paper's search space.
        let tuner = Tuner::new(device.clone(), precision);
        let tuned = tuner
            .tune(&def, &problem, &SearchSpace::paper(def.ndim(), precision))
            .ok();
        report(
            "AN5D (Tuned)",
            tuned.as_ref().map(|t| t.best.measured_gflops),
        );
        if let Some(t) = &tuned {
            println!(
                "  tuned configuration:   {} (register cap {})",
                t.best.config, t.best.register_cap
            );
        }
        println!();
    }
    Ok(())
}
