//! Model-guided tuning (Section 6.3) for a 3D stencil, followed by CUDA
//! code generation for the winning configuration.
//!
//! Run with `cargo run --release --example tune_and_codegen`.

use an5d::{standard_registry, An5d, An5dError, Precision, SearchSpace};

fn main() -> Result<(), An5dError> {
    let an5d = An5d::benchmark("star3d1r")?;
    let device = standard_registry().profile("v100").expect("registered");
    let problem = an5d.problem(&[256, 256, 256], 200)?;
    let space = SearchSpace::paper(3, Precision::Single);

    println!(
        "Tuning {} on {} over {} parameter combinations...",
        an5d.def(),
        device.short_name(),
        space.len()
    );
    let result = an5d.tune(&problem, &device, &space)?;
    println!(
        "  {} candidates survived pruning; top {} were measured.\n",
        result.ranked_candidates,
        result.measured.len()
    );

    println!("Model-ranked candidates (best measured first):");
    println!(
        "  {:<32} {:>6} {:>12} {:>12} {:>9}",
        "configuration", "regs", "model GF/s", "tuned GF/s", "accuracy"
    );
    for candidate in &result.measured {
        println!(
            "  {:<32} {:>6} {:>12.0} {:>12.0} {:>8.0}%",
            candidate.config.to_string(),
            candidate.register_cap.to_string(),
            candidate.predicted_gflops,
            candidate.measured_gflops,
            candidate.model_accuracy() * 100.0
        );
    }

    let cuda = an5d.generate_cuda(&problem, &result.best.config)?;
    println!("\nGenerated CUDA for the winner ({}):", cuda.kernel_name);
    println!(
        "  kernel source: {} lines",
        cuda.kernel_source.lines().count()
    );
    println!(
        "  host source:   {} lines",
        cuda.host_source.lines().count()
    );

    let macro_lines: Vec<&str> = cuda
        .kernel_source
        .lines()
        .filter(|l| l.starts_with("#define CALC"))
        .collect();
    println!(
        "  CALC macros (one per combined time-step): {}",
        macro_lines.len()
    );
    Ok(())
}
