//! A small "application" example: 2D heat diffusion on a plate with a hot
//! spot, solved with the naive reference executor and with AN5D's
//! N.5D-blocked schedule, comparing results and counted memory traffic.
//!
//! Run with `cargo run --example heat_diffusion`. The blocked execution
//! goes through the registered execution backend, so
//! `AN5D_BACKEND=parallel cargo run --example heat_diffusion` runs the
//! tiles of each temporal block across all CPUs — with bit-identical
//! output.

use an5d::reference::run_reference;
use an5d::{
    backend_from_env, An5dError, BlockConfig, Expr, FrameworkScheme, Grid, GridDiff, GridInit,
    KernelPlan, Precision, StencilDef, StencilProblem,
};

fn main() -> Result<(), An5dError> {
    // An explicit 5-point heat-diffusion stencil with alpha = 0.2.
    let alpha = 0.2;
    let expr = Expr::constant(1.0 - 4.0 * alpha) * Expr::cell(&[0, 0])
        + Expr::constant(alpha) * Expr::cell(&[-1, 0])
        + Expr::constant(alpha) * Expr::cell(&[1, 0])
        + Expr::constant(alpha) * Expr::cell(&[0, -1])
        + Expr::constant(alpha) * Expr::cell(&[0, 1]);
    let def = StencilDef::new("heat2d", expr)?;
    let problem = StencilProblem::new(def.clone(), &[192, 192], 60)?;
    let init = GridInit::HotSpot {
        peak: 100.0,
        width: 0.15,
    };

    // Reference solution.
    let reference = run_reference::<f64>(&problem, init);

    // Blocked solution with bT = 6 temporal blocking, executed on the
    // backend selected by AN5D_BACKEND (serial by default).
    let backend = backend_from_env();
    let config = BlockConfig::new(6, &[96], Some(96), Precision::Double)?;
    let plan = KernelPlan::build(&def, &problem, &config, FrameworkScheme::an5d())?;
    let initial = Grid::<f64>::from_init(&problem.grid_shape(), init);
    let blocked = backend.execute_f64(&plan, &problem, initial);

    let diff = GridDiff::compute(&reference, &blocked.grid).expect("same shapes");
    println!("Heat diffusion, 192x192 plate, 60 time-steps, hot spot initial condition");
    println!("  execution backend: {}", backend.describe());
    println!("  blocked vs reference max |diff|: {:.3e}", diff.max_abs);

    let centre = blocked.grid.get(&[97, 97]);
    let corner = blocked.grid.get(&[5, 5]);
    println!("  temperature at centre: {centre:.3}, near corner: {corner:.3}");

    let c = &blocked.counters;
    println!("\nCounted work of the blocked execution:");
    println!("  kernel launches (temporal blocks): {}", c.kernel_launches);
    println!(
        "  global memory reads / writes:      {} / {}",
        c.gm_reads, c.gm_writes
    );
    println!(
        "  shared memory reads / writes:      {} / {}",
        c.sm_reads, c.sm_writes
    );
    println!("  cell updates (incl. redundant):    {}", c.cell_updates);
    println!(
        "  redundancy ratio:                  {:.1}%",
        c.redundancy_ratio() * 100.0
    );

    // For comparison: what a non-temporally-blocked run would move.
    let naive_traffic = problem.total_cell_updates() * 2;
    println!(
        "  global traffic vs naive (elements):  {} vs {} ({:.1}x less)",
        c.gm_reads + c.gm_writes,
        naive_traffic,
        naive_traffic as f64 / (c.gm_reads + c.gm_writes) as f64
    );
    Ok(())
}
