//! Quick start: from a C stencil to verified blocked execution, a tuned
//! configuration and generated CUDA code.
//!
//! Run with `cargo run --example quickstart`.

use an5d::{standard_registry, An5d, An5dError, BlockConfig, Precision, SearchSpace};

fn main() -> Result<(), An5dError> {
    // 1. The paper's Fig. 4 input: a 5-point Jacobi stencil in plain C.
    let source = r"
    for (t = 0; t < I_T; t++)
      for (i = 1; i <= I_S2; i++)
        for (j = 1; j <= I_S1; j++)
          A[(t+1)%2][i][j] = (5.1f * A[t%2][i-1][j] + 12.1f * A[t%2][i][j-1]
            + 15.0f * A[t%2][i][j] + 12.2f * A[t%2][i][j+1]
            + 5.2f * A[t%2][i+1][j]) / 118;
    ";
    let an5d = An5d::from_c_source(source, "j2d5pt")?;
    let def = an5d.def();
    println!("Detected stencil: {def}");
    println!("  diagonal-access free: {}", def.diagonal_access_free());
    println!("  associative:          {}", def.is_associative());

    // 2. Verify the N.5D-blocked schedule against the naive reference on a
    //    small problem (bit-exact in double precision).
    let problem = an5d.problem(&[128, 128], 20)?;
    let config = BlockConfig::new(4, &[64], Some(64), Precision::Double)?;
    let report = an5d.verify(&problem, &config)?;
    println!(
        "\nVerification vs naive reference: match = {}, max |diff| = {:.2e}",
        report.matches_reference, report.max_abs_diff
    );
    println!(
        "  redundant updates from overlapped tiling: {:.1}%",
        report.counters.redundancy_ratio() * 100.0
    );

    // 3. Tune the blocking parameters for Tesla V100 (resolved through
    //    the device registry) with the Section 5 performance model
    //    guiding the search (quick search space).
    let device = standard_registry().profile("v100").expect("registered");
    let tuning_problem = an5d.problem(&[4096, 4096], 500)?;
    let space = SearchSpace::quick(2, Precision::Single);
    let tuning = an5d.tune(&tuning_problem, &device, &space)?;
    println!(
        "\nTuned for {}: {} → {:.0} GFLOP/s (simulated), register cap {}",
        device.short_name(),
        tuning.best.config,
        tuning.best.measured_gflops,
        tuning.best.register_cap
    );

    // 4. Generate the CUDA code AN5D would emit for the tuned configuration.
    let cuda = an5d.generate_cuda(&tuning_problem, &tuning.best.config)?;
    println!(
        "\nGenerated {} ({} lines of CUDA). Kernel preview:",
        cuda.kernel_name,
        cuda.total_lines()
    );
    for line in cuda.kernel_source.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
    Ok(())
}
