//! Umbrella crate of the AN5D-rs workspace.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a package to attach to; it simply re-exports the
//! public API of the [`an5d`] facade crate. Library users should depend on
//! `an5d` directly.

#![forbid(unsafe_code)]

pub use an5d::*;
